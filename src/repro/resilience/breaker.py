"""A minimal three-state circuit breaker for the serving tier.

Classic semantics (closed -> open -> half-open -> closed):

* **closed**: calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker open.
* **open**: :meth:`allow` answers ``False`` -- callers skip the
  protected operation (and serve stale / shed load instead of hammering
  a builder that keeps failing) until ``reset_after_s`` has elapsed.
* **half-open**: after the cool-down one probe call is allowed through;
  success closes the breaker, failure re-opens it for another full
  cool-down.

The clock is injectable (monotonic by default) and is pure telemetry:
breaker state never touches artifact bytes, cache keys, or results, so
it cannot perturb warm == cold equality.  Thread-safety: transitions
are guarded by a lock because the serving tier records outcomes from
executor threads while the event loop reads :meth:`snapshot`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.telemetry import registry as _metrics_registry

#: Every actual state change, labeled by the state entered -- shared by
#: all breakers in the process (the serving tier keys breakers by
#: artifact name, but fleet dashboards care about the aggregate).
_TRANSITIONS = _metrics_registry().counter(
    "breaker_transitions_total", "circuit-breaker state changes, per new state",
    ("to",),
)


class CircuitBreaker:
    """Trip after consecutive failures; recover via a timed half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (cool-down aware)."""
        with self._lock:
            return self._state_locked()

    def _set_state_locked(self, state: str) -> None:
        if state != self._state:
            _TRANSITIONS.inc(to=state)
        self._state = state

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._set_state_locked("half-open")
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """Whether the protected operation should be attempted now.

        In half-open state exactly one caller gets ``True`` (the probe);
        the rest keep degrading until the probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._set_state_locked("closed")
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            state = self._state_locked()
            if state == "half-open" or self._failures >= self.failure_threshold:
                self._set_state_locked("open")
                self._opened_at = self._clock()
                self._probing = False

    def snapshot(self) -> dict:
        """State document for ``/healthz`` (and the drill report)."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_after_s": self.reset_after_s,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, failures={self._failures})"
