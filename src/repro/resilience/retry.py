"""The shared retry/backoff policy: bounded, budgeted, deterministic.

Every transient-failure loop in the repo goes through
:func:`call_with_retry` -- REP009 flags ``time.sleep`` loops and
ad-hoc ``for attempt in range(...)`` retries anywhere outside
``repro/resilience/``, so backoff behaviour (attempt counts, delay
growth, jitter, timeout budgets) is defined exactly once and observable
in one counter (:data:`RETRY_COUNTS`).

Jitter is **deterministic**: the perturbation of attempt *n* for label
*l* is derived from ``util.rng``'s SHA-256 seed derivation over
``(n, l)``, never from ambient entropy (REP001) -- two runs of the same
failing call back off on the identical schedule, which is what makes
the chaos drill (:mod:`repro.resilience.drill`) replayable.  Delays
only shrink under jitter, so ``max_delay_s`` is a hard ceiling and the
worst-case stall of a call is computable from its policy alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple, Type

from repro.telemetry import counter_view, registry as _metrics_registry
from repro.util.rng import derive_seed

#: Retry telemetry, keyed ``<event>:<label>`` -- ``error`` every failed
#: attempt, ``retry`` every scheduled re-attempt, ``recovered`` when a
#: retry eventually succeeded, ``gaveup`` when attempts or the timeout
#: budget ran out, ``deadline`` when the budget (not the attempt count)
#: stopped the loop.  ``/healthz`` mirrors this into its resilience
#: section; ``GET /metrics`` renders the underlying ``retries_total``
#: registry instrument this name is a view of.
# replint: allow[REP010] compatibility view over the retries_total registry instrument
RETRY_COUNTS = counter_view(
    _metrics_registry().counter(
        "retries_total", "retry-loop events, per event:label", ("event",)
    )
)

_SEED_SPAN = float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """One bounded-backoff policy: attempts, delays, jitter, budget.

    ``delay(attempt)`` grows ``base_delay_s * multiplier**(attempt-1)``
    capped at ``max_delay_s``, then shrinks by up to ``jitter`` of
    itself (deterministically, per attempt+label).  ``timeout_s`` is a
    wall-budget for the whole call including sleeps; ``None`` means the
    attempt count is the only bound.
    """

    attempts: int = 3
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    timeout_s: float | None = 5.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def delay(self, attempt: int, label: str = "") -> float:
        """The deterministic backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        raw = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if not self.jitter:
            return raw
        unit = derive_seed(attempt, f"retry:{label}") / _SEED_SPAN  # [0, 1)
        return raw * (1.0 - self.jitter * unit)

    def delays(self, label: str = "") -> tuple[float, ...]:
        """Every backoff this policy would sleep, in order (replayable)."""
        return tuple(
            self.delay(attempt, label) for attempt in range(1, self.attempts)
        )


#: The general-purpose default.
DEFAULT_POLICY = RetryPolicy()

#: Warehouse IO: short delays (local disk hiccups resolve fast or never),
#: a tight budget so a dead disk degrades to a rebuild quickly.
STORE_POLICY = RetryPolicy(
    attempts=3, base_delay_s=0.01, max_delay_s=0.1, timeout_s=1.0
)


def call_with_retry(
    fn: Callable[[], Any],
    *,
    label: str,
    policy: RetryPolicy = DEFAULT_POLICY,
    retryable: Tuple[Type[BaseException], ...] = (OSError,),
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Run ``fn`` under ``policy``; re-raise the last error on exhaustion.

    Only ``retryable`` exceptions are retried -- anything else (a
    checksum mismatch, a bug) propagates immediately.  ``on_retry`` is
    called before each backoff sleep with ``(attempt, exception)``;
    ``sleep``/``clock`` are injectable for tests (the monotonic clock
    only bounds the budget -- it never enters results, cache keys, or
    artifact bytes).
    """
    deadline = None if policy.timeout_s is None else clock() + policy.timeout_s
    last: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            value = fn()
        except retryable as exc:
            last = exc
            RETRY_COUNTS[f"error:{label}"] += 1
            if attempt == policy.attempts:
                break
            delay = policy.delay(attempt, label)
            if deadline is not None and clock() + delay > deadline:
                RETRY_COUNTS[f"deadline:{label}"] += 1
                break
            RETRY_COUNTS[f"retry:{label}"] += 1
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(delay)
        else:
            if attempt > 1:
                RETRY_COUNTS[f"recovered:{label}"] += 1
            return value
    RETRY_COUNTS[f"gaveup:{label}"] += 1
    assert last is not None  # the loop only exits via the except arm
    raise last


def reset_retry_counts() -> None:
    """Clear :data:`RETRY_COUNTS` (test isolation hook)."""
    RETRY_COUNTS.clear()
