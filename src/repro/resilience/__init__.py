"""repro.resilience: deterministic faults, shared retries, graceful drills.

The robustness tier of the reproduction, in three parts:

* :mod:`repro.resilience.retry` -- the **one** retry/backoff policy in
  the repo (REP009 forbids ad-hoc sleep loops everywhere else):
  bounded exponential backoff with deterministic jitter and a per-call
  timeout budget, applied to warehouse IO and the session's
  read-through loads.
* :mod:`repro.resilience.faults` -- a seeded, replayable
  fault-injection harness: a :class:`FaultPlan` derives its schedule
  from :mod:`repro.util.rng` substreams (no ambient entropy) and hooks
  in ``store/warehouse.py``, ``util/procpool.py``, and
  ``serve/service.py`` fire the scheduled faults -- store IO errors,
  corrupt blobs, worker crashes, slow builds -- at exact operation
  indices, identically on every run with the same seed.
* :mod:`repro.resilience.breaker` + :mod:`repro.resilience.drill` --
  the serving tier's circuit breaker and the scripted chaos drill
  (``python -m repro resilience drill --seed 7``) that proves the
  stack degrades instead of failing: zero 5xx for warehouse-backed
  artifacts, zero corruption, bit-identical results.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.drill import run_drill
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    InjectedWorkerCrash,
    active_plan,
    corrupt_hook,
    fault_hook,
    inject_faults,
    parse_fault,
)
from repro.resilience.retry import (
    DEFAULT_POLICY,
    RETRY_COUNTS,
    STORE_POLICY,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    "CircuitBreaker",
    "run_drill",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "InjectedWorkerCrash",
    "active_plan",
    "corrupt_hook",
    "fault_hook",
    "inject_faults",
    "parse_fault",
    "DEFAULT_POLICY",
    "RETRY_COUNTS",
    "STORE_POLICY",
    "RetryPolicy",
    "call_with_retry",
]
