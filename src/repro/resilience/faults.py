"""Deterministic fault injection: seeded plans, replayable schedules.

A :class:`FaultPlan` precomputes, from a seed and a set of
:class:`FaultSpec`\\ s, exactly *which operations fail*: each fault kind
counts its hook invocations (operation index 0, 1, 2, ...) and fires at
the indices a :class:`~repro.util.rng.RngStream` substream sampled at
plan-build time.  No ambient entropy anywhere (REP001) -- the same seed
always yields the same schedule, so a chaos run is an experiment you
can re-run, bisect, and assert on.

The hooks are compiled into the production tiers and cost one global
``None``-check when no plan is active:

* ``store/warehouse.py`` calls :func:`fault_hook` before payload reads
  (``store-read``) and staged writes (``store-write``), and filters
  read bytes through :func:`corrupt_hook` (``corrupt-blob`` -- the
  *read* is corrupted, the disk stays intact, which is how the drill
  distinguishes degradation from damage);
* ``util/procpool.py`` calls :func:`fault_hook` while collecting each
  shard (``worker-crash`` raises a :class:`InjectedWorkerCrash`, a
  ``BrokenProcessPool``, exercising per-shard resubmission);
* ``serve/service.py`` calls :func:`fault_hook` around the cold build
  (``slow-build`` sleeps ``delay_s``; ``build-error`` raises),
  exercising the deadline, breaker, and serve-stale paths.

Plans install via the :func:`inject_faults` context manager and record
every fired fault in :attr:`FaultPlan.events` for the drill report.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from concurrent.futures.process import BrokenProcessPool

from repro.util.rng import RngStream

#: Every fault kind a spec may name (and the hook sites that honour it).
FAULT_KINDS = (
    "store-read",  # OSError before a payload-file read
    "store-write",  # OSError before a staged payload write
    "corrupt-blob",  # read bytes mutated (checksum will fail); disk untouched
    "worker-crash",  # BrokenProcessPool while collecting one pool shard
    "slow-build",  # delay_s sleep inside the serve-tier cold build
    "build-error",  # exception inside the serve-tier cold build
)


class InjectedFaultError(OSError):
    """A scheduled, transient-shaped fault (retry policies treat it as IO)."""


class InjectedWorkerCrash(BrokenProcessPool):
    """A scheduled worker crash (procpool treats it as a real crash)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind with its schedule parameters.

    ``count`` operation indices are sampled (without replacement) from
    ``[0, horizon)``; ``delay_s`` only matters for ``slow-build``.
    """

    kind: str
    count: int = 1
    horizon: int = 8
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.horizon < max(1, self.count):
            raise ValueError("horizon must be >= count (and >= 1)")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def spec(self) -> str:
        """The canonical text form (:func:`parse_fault` round-trips it)."""
        text = f"{self.kind}:{self.count}@{self.horizon}"
        if self.kind == "slow-build":
            text += f",delay={self.delay_s:g}"
        return text


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: which kind, at which operation index, where."""

    kind: str
    index: int
    detail: str


def parse_fault(text: str) -> FaultSpec:
    """Parse ``kind[:count[@horizon]][,delay=S]`` into a :class:`FaultSpec`.

    >>> parse_fault("store-read:2@10").count
    2
    >>> parse_fault("slow-build:1@4,delay=0.2").delay_s
    0.2
    """
    head, _, tail = text.strip().partition(",")
    kind, _, counts = head.partition(":")
    kwargs: dict = {"kind": kind.strip()}
    if counts:
        count_text, _, horizon_text = counts.partition("@")
        try:
            kwargs["count"] = int(count_text)
            if horizon_text:
                kwargs["horizon"] = int(horizon_text)
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}; expected kind[:count[@horizon]]"
                "[,delay=S]"
            ) from None
    if tail:
        key, sep, value = tail.partition("=")
        if not sep or key.strip() != "delay":
            raise ValueError(
                f"bad fault option {tail!r} in {text!r}; only delay=S is known"
            )
        try:
            kwargs["delay_s"] = float(value)
        except ValueError:
            raise ValueError(f"delay needs a number, got {value!r}") from None
    return FaultSpec(**kwargs)


class FaultPlan:
    """A seeded, replayable schedule over any number of fault specs."""

    def __init__(self, specs: Iterable[FaultSpec | str], seed: int) -> None:
        self.seed = seed
        self.specs = tuple(
            parse_fault(spec) if isinstance(spec, str) else spec for spec in specs
        )
        # Schedule derivation: one substream per spec position+kind, so
        # adding a spec never perturbs the schedules of the others.
        self._table: dict[str, dict[int, FaultSpec]] = {}
        for position, spec in enumerate(self.specs):
            rng = RngStream(seed, f"fault:{position}:{spec.kind}")
            table = self._table.setdefault(spec.kind, {})
            for index in rng.sample(range(spec.horizon), spec.count):
                table[index] = spec
        self._ops: Counter = Counter()
        self.events: list[FaultEvent] = []

    def schedule(self) -> dict[str, tuple[int, ...]]:
        """Kind -> the operation indices that will fire, sorted.

        Two plans built from the same specs and seed return equal
        schedules -- the acceptance property of the harness.
        """
        return {
            kind: tuple(sorted(table)) for kind, table in sorted(self._table.items())
        }

    def fired(self) -> dict[str, int]:
        """Kind -> how many scheduled faults actually fired so far."""
        counts: Counter = Counter(event.kind for event in self.events)
        return dict(sorted(counts.items()))

    def fire(self, kind: str, detail: str = "") -> FaultSpec | None:
        """Advance ``kind``'s operation counter; the spec if this op faults."""
        index = self._ops[kind]
        self._ops[kind] += 1
        spec = self._table.get(kind, {}).get(index)
        if spec is not None:
            self.events.append(FaultEvent(kind=kind, index=index, detail=detail))
        return spec


# -- the process-wide active plan ---------------------------------------------

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` (the production fast path)."""
    return _ACTIVE


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block (not reentrant)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active in this process")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None


def fault_hook(kind: str, detail: str = "") -> None:
    """The injection point: raise/sleep when ``kind`` is scheduled now.

    A no-op (one global check) without an active plan.  ``slow-build``
    sleeps its spec's ``delay_s``; ``worker-crash`` raises
    :class:`InjectedWorkerCrash`; everything else raises
    :class:`InjectedFaultError` (an ``OSError``, so the shared retry
    policy treats it exactly like a real transient IO failure).
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.fire(kind, detail)
    if spec is None:
        return
    if kind == "slow-build":
        time.sleep(spec.delay_s)
        return
    if kind == "worker-crash":
        raise InjectedWorkerCrash(f"injected worker crash ({detail or kind})")
    raise InjectedFaultError(f"injected {kind} fault ({detail or kind})")


def corrupt_hook(blob: bytes, detail: str = "") -> bytes:
    """Return ``blob``, corrupted when a ``corrupt-blob`` fault is due.

    The first byte is flipped -- enough to fail any checksum -- on a
    *copy*: injected corruption damages one read, never the stored
    bytes, so ``store verify`` stays clean and the drill can assert
    zero on-disk corruption while still exercising the warn+rebuild
    path.
    """
    plan = _ACTIVE
    if plan is None:
        return blob
    spec = plan.fire("corrupt-blob", detail)
    if spec is None or not blob:
        return blob
    mutated = bytearray(blob)
    mutated[0] ^= 0xFF
    return bytes(mutated)
