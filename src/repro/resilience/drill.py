"""The scripted chaos drill: inject faults, assert nothing actually broke.

``python -m repro resilience drill --seed 7`` runs a deterministic
chaos scenario end to end and checks the properties this package
promises:

* **Pool crashes lose nothing.** Phase A builds the traffic study with
  ``parallel=2`` under a scheduled ``worker-crash`` fault; the crashed
  shards resubmit sequentially and the result must be **bit-identical**
  (per-residence record digests) to a fault-free sequential build.
* **The serve tier never 5xxes for warehouse-backed artifacts.**
  Phase B warms a store, then hammers :class:`~repro.serve.service.
  ArtifactService` while ``store-read`` / ``corrupt-blob`` /
  ``slow-build`` faults fire; every response must be < 500 (stale is
  fine -- it is *marked*), and at least one fault must actually have
  fired (a drill that injected nothing proves nothing).
* **No data corruption.** Injected corruption mutates reads, never
  disk: ``store.verify()`` must come back clean afterwards.
* **The schedule replays.** Rebuilding the fault plan from the same
  seed must yield the identical schedule (REP001: all of it derives
  from :mod:`repro.util.rng`).

Everything is pure library code -- the CLI wrapper in ``__main__``
just prints the report and exits 1 when ``problems`` is non-empty.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults

#: Phase A: crash 2 of the 5 traffic-residence shards mid-map.
PHASE_A_FAULTS = (FaultSpec("worker-crash", count=2, horizon=5),)

#: Phase B: chaos against a warmed store + serve loop.  Horizons are
#: sized to the operation counts the request loop actually generates
#: (8 artifact reads; builds only happen when corruption forces one).
PHASE_B_FAULTS = (
    FaultSpec("store-read", count=2, horizon=8),
    FaultSpec("corrupt-blob", count=2, horizon=8),
    FaultSpec("slow-build", count=1, horizon=2, delay_s=0.02),
)

#: The full scenario (the seed-reproducibility check runs over this).
DEFAULT_FAULTS = PHASE_A_FAULTS + PHASE_B_FAULTS


def _traffic_fingerprint(traffic: Any) -> dict[str, str]:
    """Per-residence content digests of one built traffic study.

    Hashes the packed per-residence frames column by column, so two
    studies fingerprint equal iff their generated records are
    bit-identical -- the equality Phase A asserts across a crashed and
    a fault-free build.
    """
    digests: dict[str, str] = {}
    for name, dataset in sorted(traffic.datasets.items()):
        frame = dataset.frame()
        hasher = hashlib.sha256()
        for column in sorted(vars(frame)):
            value = getattr(frame, column)
            data = getattr(value, "tobytes", None)
            hasher.update(column.encode("utf-8"))
            hasher.update(data() if data is not None else repr(value).encode())
        digests[name] = hasher.hexdigest()
    return digests


def _phase_pool_crash(seed: int, days: int, problems: list[str]) -> dict:
    """Phase A: a mid-map worker crash must not change a single bit."""
    from repro.datasets.scenarios import build_residence_study
    from repro.util.procpool import reset_pool_fallback_warnings, resubmitted_shards

    import warnings

    baseline = _traffic_fingerprint(
        build_residence_study(num_days=days, seed=seed, parallel=False)
    )
    plan = FaultPlan(PHASE_A_FAULTS, seed=seed)
    reset_pool_fallback_warnings()
    with inject_faults(plan), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        crashed = _traffic_fingerprint(
            build_residence_study(num_days=days, seed=seed, parallel=2)
        )
    fired = sum(plan.fired().values())
    if fired == 0:
        problems.append("phase A: no worker-crash fault fired (nothing proven)")
    if crashed != baseline:
        problems.append(
            "phase A: crashed-pool traffic differs from the fault-free build "
            f"({sorted(k for k in baseline if baseline[k] != crashed.get(k))})"
        )
    return {
        "schedule": {k: list(v) for k, v in plan.schedule().items()},
        "faults_fired": fired,
        "resubmitted_shards": [list(item) for item in resubmitted_shards()],
        "bit_identical": crashed == baseline,
    }


def _phase_serve_chaos(
    seed: int, config: Any, store: Any, problems: list[str]
) -> dict:
    """Phase B: chaos against the serve tier; zero 5xx, zero corruption."""
    import warnings

    from repro.serve.service import ArtifactService

    service = ArtifactService(
        config=config, store=store, build_deadline_s=30.0, max_build_queue=4
    )
    # Warm first, *outside* the fault plan: the drill's property is
    # "zero 5xx for warehouse-backed artifacts", so the warehouse must
    # actually back them before the chaos starts.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for name in ("contrast", "table1"):
            service.handle("GET", f"/v1/artifact/{name}")
    plan = FaultPlan(PHASE_B_FAULTS, seed=seed)
    targets = [
        "/v1/artifact/contrast",
        "/v1/artifact/table1",
        "/v1/artifact/contrast",
        "/healthz",
        "/v1/artifact/table1",
        "/v1/artifact/contrast",
        "/v1/artifact/table1",
        "/v1/artifacts",
        "/v1/artifact/contrast",
        "/v1/artifact/table1",
    ]
    statuses: list[tuple[str, int]] = []
    stale_served = 0
    with inject_faults(plan), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for target in targets:
            # Every pass re-evicts the hot tier so the warehouse (where
            # the faults live) is actually on the request path.
            service.drop_hot()
            response = service.handle("GET", target)
            assert response is not None
            statuses.append((target, response.status))
            if response.status >= 500:
                problems.append(
                    f"phase B: {target} answered {response.status} under faults"
                )
            document = response.json()
            if isinstance(document, dict) and document.get("degraded"):
                stale_served += 1
    fired = plan.fired()
    if not fired:
        problems.append("phase B: no store/serve fault fired (nothing proven)")
    damage = store.verify()
    if damage:
        problems.append(f"phase B: store.verify() found damage: {damage[:3]}")
    return {
        "schedule": {k: list(v) for k, v in plan.schedule().items()},
        "requests": len(targets),
        "statuses": [list(item) for item in statuses],
        "faults_fired": dict(fired),
        "stale_served": stale_served,
        "store_verify_problems": len(damage),
        "service_counts": dict(sorted(service.resilience_counts.items())),
    }


def run_drill(
    seed: int = 7,
    days: int = 4,
    sites: int = 110,
    store_root: str | None = None,
) -> dict:
    """Run the full chaos drill; the report's ``problems`` must be empty.

    Small scales by default (CI smoke); ``store_root`` picks where the
    scratch warehouse lives (a temp directory when ``None``).
    """
    import tempfile

    from repro.api.session import StudyConfig, clear_caches
    from repro.store.warehouse import ArtifactStore, reset_store, set_store

    problems: list[str] = []

    # Replayability first: same seed, same schedule -- the property
    # every other assertion rides on.
    schedule = FaultPlan(DEFAULT_FAULTS, seed=seed).schedule()
    if FaultPlan(DEFAULT_FAULTS, seed=seed).schedule() != schedule:
        problems.append("fault schedule is not reproducible from its seed")

    phase_a = _phase_pool_crash(seed, days, problems)

    scratch = None
    if store_root is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-drill-")
        store_root = scratch.name
    try:
        store = ArtifactStore(store_root)
        config = StudyConfig(days=days, sites=sites, parallel=False)
        clear_caches()
        set_store(store)
        try:
            phase_b = _phase_serve_chaos(seed, config, store, problems)
        finally:
            reset_store()
            clear_caches()
    finally:
        if scratch is not None:
            scratch.cleanup()

    return {
        "seed": seed,
        "scale": {"days": days, "sites": sites},
        "schedule": {kind: list(indices) for kind, indices in schedule.items()},
        "pool_crash": phase_a,
        "serve_chaos": phase_b,
        "problems": problems,
        "ok": not problems,
    }
