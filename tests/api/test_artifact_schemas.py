"""Golden wire-format schemas: the serving API cannot drift silently.

One representative artifact per registry layer is rendered at a pinned
smoke scale and reduced to its *schema* -- column order, metadata keys,
and the JSON type of every row field -- which must match the committed
golden files under ``tests/api/golden/``.  Values are free to change
with scale or analysis fixes; the shape consumed by ``repro.serve``
clients is not.

To bless an intentional wire-format change::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/api/test_artifact_schemas.py
    git diff tests/api/golden/   # review, then commit
"""

import json
import os
from pathlib import Path

import pytest

from repro.api import Study, StudyConfig, registry

GOLDEN_DIR = Path(__file__).parent / "golden"

#: layer -> its representative artifact (census twice over: ``fig5`` is
#: the pure crawl, ``table2`` exercises the cloud attribution).
LAYER_CASES = {
    "traffic": "table1",
    "census": "fig5",
    "cloud": "table2",
    "observatory": "obs_availability",
    "whatif": "whatif",
    "sentinel": "sentinel_events",
}

#: Pinned schema-snapshot scale: small enough for seconds-fast renders,
#: with a one-scenario grid so the whatif layer is one cheap overlay.
CONFIG = StudyConfig(
    days=6,
    sites=140,
    probe_targets=70,
    parallel=False,
    whatif_scenarios=("nat64:DE",),
)


def json_type(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    raise TypeError(f"not a JSON value: {value!r}")  # pragma: no cover


def schema_of(document: dict) -> dict:
    """Reduce a rendered artifact document to its wire schema."""
    row_types: dict[str, set] = {}
    for row in document["rows"]:
        for key, value in row.items():
            row_types.setdefault(key, set()).add(json_type(value))
    return {
        "name": document["name"],
        "title_type": json_type(document["title"]),
        "columns": document["columns"],
        "metadata_keys": sorted(document["metadata"]),
        "row_fields": {
            key: sorted(types) for key, types in sorted(row_types.items())
        },
    }


@pytest.fixture(scope="module")
def study():
    return Study(CONFIG)


@pytest.mark.parametrize(
    "layer,name", sorted(LAYER_CASES.items()), ids=lambda v: str(v)
)
def test_wire_schema_matches_golden(study, layer, name):
    assert layer in registry.get(name).needs  # the case covers its layer
    document = json.loads(study.artifact(name).to_json())
    schema = schema_of(document)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n")
    assert golden_path.is_file(), (
        f"missing golden schema {golden_path}; generate it with "
        "REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(golden_path.read_text())
    assert schema == golden, (
        f"the {name!r} wire format drifted from tests/api/golden/{name}.json; "
        "if intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and commit "
        "the diff"
    )


def test_every_layer_has_a_case():
    assert set(LAYER_CASES) == {
        "traffic", "census", "cloud", "observatory", "whatif", "sentinel",
    }


def test_document_envelope_is_stable(study):
    """The outer document keys every serving client relies on."""
    document = json.loads(study.artifact("fig5").to_json())
    assert list(document) == ["name", "title", "columns", "rows", "metadata"]
