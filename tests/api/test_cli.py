"""Tests for the registry-backed CLI (``python -m repro``)."""

import json

import pytest

from repro.__main__ import build_parser, main, parse_artifact_spec
from repro.api import BUILD_COUNTS, registry
from repro.datasets.scenarios import SCALE_PRESETS


class TestParsing:
    def test_unknown_artifact_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1@warp=9"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1@days=soon"])

    def test_spec_parsing(self):
        assert parse_artifact_spec("fig5") == ("fig5", {})
        assert parse_artifact_spec("fig13@days=160,sites=2000") == (
            "fig13", {"days": 160, "sites": 2000}
        )

    def test_known_artifacts_accepted(self):
        args = build_parser().parse_args(["table1", "fig5@sites=100", "--days", "3"])
        assert args.artifacts == ["table1", "fig5@sites=100"]
        assert args.days == 3


class TestScalePresets:
    def test_presets_match_scenarios_calibration(self):
        assert SCALE_PRESETS["cli"].days == 28
        assert SCALE_PRESETS["cli"].sites == 1500
        assert SCALE_PRESETS["bench"].days == 154
        assert SCALE_PRESETS["bench"].sites == 4000
        assert SCALE_PRESETS["paper"].days == 273
        assert SCALE_PRESETS["paper"].sites == 100_000

    def test_default_scale_is_cli(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == "cli"
        assert args.days is None and args.sites is None

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galactic"])

    def test_scale_expands_to_preset_config(self, capsys):
        code = main(["fig6", "--scale", "cli", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["days"] == SCALE_PRESETS["cli"].days
        assert doc["config"]["sites"] == SCALE_PRESETS["cli"].sites

    def test_explicit_flags_override_preset(self, capsys):
        code = main([
            "fig6", "--scale", "paper", "--days", "5", "--sites", "120",
            "--seed", "97", "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["days"] == 5
        assert doc["config"]["sites"] == 120


class TestListCommand:
    def test_list_shows_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert len(registry.names()) >= 20

    def test_list_json(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert sorted(entry["name"] for entry in listed) == registry.names()

    def test_list_rejects_extra_artifacts(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "fig5"])


class TestRunArtifacts:
    def test_json_round_trips(self, capsys):
        code = main(["fig6", "--sites", "180", "--seed", "91", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["sites"] == 180
        assert doc["artifacts"]["fig6"]["rows"]

    def test_census_built_once_for_table2_table3(self, capsys):
        before = BUILD_COUNTS.copy()
        code = main(["table2", "table3", "--sites", "170", "--seed", "93"])
        assert code == 0
        assert BUILD_COUNTS["census"] - before["census"] == 1
        assert BUILD_COUNTS["cloud"] - before["cloud"] == 1
        assert BUILD_COUNTS["traffic"] == before["traffic"]  # never touched
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out

    def test_all_shares_builds_and_emits_json_for_every_artifact(self, capsys):
        # The acceptance run, scaled down: every artifact in one JSON
        # document, with the expensive layers built at most once each.
        before = BUILD_COUNTS.copy()
        code = main([
            "all", "--days", "7", "--sites", "220", "--seed", "99",
            "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert sorted(doc["artifacts"]) == registry.names()
        for name, art in doc["artifacts"].items():
            assert art["name"] == name
            assert isinstance(art["rows"], list)
        for layer in ("traffic", "census", "cloud", "dependencies"):
            assert BUILD_COUNTS[layer] - before[layer] <= 1, layer

    def test_override_kept_distinct_in_json(self, capsys):
        code = main([
            "fig6", "fig6@sites=140", "--sites", "160", "--seed", "96",
            "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        # both runs survive, each attributed to the config that produced it
        assert sorted(doc["artifacts"]) == ["fig6", "fig6@sites=140"]
        assert doc["artifacts"]["fig6"]["config"]["sites"] == 160
        assert doc["artifacts"]["fig6@sites=140"]["config"]["sites"] == 140

    def test_per_artifact_override(self, capsys):
        before = BUILD_COUNTS.copy()
        code = main(["fig6@sites=150", "--sites", "9999", "--seed", "95"])
        assert code == 0
        # the override, not --sites, decides the census scale
        assert BUILD_COUNTS["census"] - before["census"] == 1
        assert "readiness by popularity" in capsys.readouterr().out

    def test_deduplicates_repeated_artifacts(self, capsys):
        code = main(["fig6", "fig6", "--sites", "220", "--seed", "99"])
        assert code == 0
        assert capsys.readouterr().out.count("Figure 6") == 1
