"""Tests for the Study session: config, laziness, memoization."""

import pytest

from repro.api import BUILD_COUNTS, Study, StudyConfig
from repro.api import session as session_module
from repro.datasets import build_residence_study


class TestStudyConfig:
    def test_defaults_are_bench_scale(self):
        config = StudyConfig()
        assert config.days == 154
        assert config.sites == 4000
        assert config.seed == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(days=0)
        with pytest.raises(ValueError):
            StudyConfig(sites=0)
        with pytest.raises(ValueError):
            StudyConfig(link_clicks=-1)

    def test_residences_normalized(self):
        config = StudyConfig(residences=("E", "A"))
        assert config.residences == ("A", "E")

    def test_replace_revalidates(self):
        config = StudyConfig(days=7)
        assert config.replace(days=9).days == 9
        with pytest.raises(ValueError):
            config.replace(days=-1)

    def test_hashable_and_equal(self):
        assert StudyConfig(days=7) == StudyConfig(days=7)
        assert len({StudyConfig(days=7), StudyConfig(days=7)}) == 1

    def test_kwargs_constructor(self):
        study = Study(days=7, seed=3)
        assert study.config == StudyConfig(days=7, seed=3)


class TestLazyMemoizedBuilds:
    def test_construction_builds_nothing(self):
        before = BUILD_COUNTS.copy()
        Study(days=200, sites=50_000, seed=12345)  # huge scale: must stay lazy
        assert BUILD_COUNTS == before

    def test_traffic_built_once_across_instances(self):
        config = StudyConfig(days=3, seed=9001, residences=("A",))
        before = BUILD_COUNTS["traffic"]
        first = Study(config).traffic
        second = Study(config).traffic
        assert first is second
        assert BUILD_COUNTS["traffic"] - before == 1

    def test_different_config_builds_again(self):
        before = BUILD_COUNTS["traffic"]
        Study(days=3, seed=9002, residences=("A",)).traffic
        Study(days=3, seed=9003, residences=("A",)).traffic
        assert BUILD_COUNTS["traffic"] - before == 2

    def test_census_and_derived_layers_built_once(self):
        config = StudyConfig(sites=120, seed=9004)
        before = BUILD_COUNTS.copy()
        for _ in range(2):
            study = Study(config)
            study.census
            study.cloud
            study.dependencies
        assert BUILD_COUNTS["census"] - before["census"] == 1
        assert BUILD_COUNTS["cloud"] - before["cloud"] == 1
        assert BUILD_COUNTS["dependencies"] - before["dependencies"] == 1

    def test_residence_subset_flows_through(self):
        study = Study(days=3, seed=9001, residences=("A",))
        assert sorted(study.traffic.datasets) == ["A"]


class TestCacheRegistry:
    def test_every_module_level_cache_is_registered(self):
        """No layer cache may dodge ``clear_caches`` (whatif overlays
        included): every module-level ``_*_CACHE`` dict anywhere in the
        source tree must be registered in ``_ALL_CACHES``.  Delegates to
        the replint REP002 cross-module pass so the test and the linter
        cannot drift -- and so the check covers every module, not just
        ``session.py``."""
        from repro.devtools.lint import unregistered_caches

        violations = unregistered_caches()
        assert not violations, "\n".join(
            violation.format(fix_hints=True) for violation in violations
        )
        assert session_module._ALL_CACHES, "expected registered layer caches"

    def test_clear_caches_empties_every_registered_cache(self):
        Study(days=3, seed=9009, residences=("A",)).traffic
        assert any(session_module._ALL_CACHES["traffic"].values())
        session_module.clear_caches()
        for name, cache in session_module._ALL_CACHES.items():
            assert cache == {}, name

    def test_prime_caches_rejects_unknown_layer(self):
        with pytest.raises(ValueError, match="unknown layer"):
            session_module.prime_caches({"warp": {}})

    def test_prime_caches_seeds_entries(self):
        config = StudyConfig(days=3, seed=9010, residences=("A",))
        traffic = build_residence_study(num_days=3, seed=9010, residences=("A",))
        before = BUILD_COUNTS["traffic"]
        session_module.prime_caches(
            {"traffic": {config.traffic_key: traffic}}
        )
        assert Study(config).traffic is traffic
        assert BUILD_COUNTS["traffic"] == before


class TestFromPrebuilt:
    def test_prebuilt_traffic_skips_build(self):
        traffic = build_residence_study(num_days=3, seed=9005, residences=("A",))
        before = BUILD_COUNTS.copy()
        study = Study.from_prebuilt(traffic=traffic)
        result = study.artifact("table1")
        assert BUILD_COUNTS == before
        assert "Table 1" in result.to_text()
        assert study.config.days == 3

    def test_run_returns_results_in_order(self):
        traffic = build_residence_study(num_days=3, seed=9005, residences=("A",))
        study = Study.from_prebuilt(traffic=traffic)
        results = study.run(["table1", "fig1"])
        assert [r.name for r in results] == ["table1", "fig1"]
