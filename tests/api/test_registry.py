"""Tests for the artifact registry: coverage, structure, JSON rendering."""

import json

import pytest

from repro.api import ArtifactResult, Study, StudyConfig, artifact
from repro.api import registry

#: One tiny session shared by every artifact smoke test in this module.
SHARED = StudyConfig(days=7, sites=220, seed=99)


@pytest.fixture(scope="module")
def study():
    return Study(SHARED)


class TestRegistryContents:
    def test_at_least_twenty_artifacts(self):
        assert len(registry.names()) >= 20

    def test_headline_artifacts_present(self):
        names = set(registry.names())
        assert {"table1", "table2", "table3", "fig5", "fig6", "deps"} <= names
        # every numbered figure of the paper
        assert {f"fig{i}" for i in range(1, 19) if i != 11} <= names
        assert "fig11" in names

    def test_specs_are_described(self):
        for spec in registry.specs():
            assert spec.description, spec.name
            assert spec.paper, spec.name
            assert spec.needs <= registry.LAYERS, spec.name

    def test_get_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="table1"):
            registry.get("nonsense")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            artifact("table1")(lambda study: ArtifactResult())

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown layers"):
            artifact("bogus-layer-artifact", needs=("warp",))


class TestEveryArtifactRenders:
    @pytest.mark.parametrize("name", registry.names())
    def test_text_and_json(self, study, name):
        result = study.artifact(name)
        assert isinstance(result, ArtifactResult)
        assert result.name == name
        text = result.to_text()
        assert isinstance(text, str) and text.strip()
        parsed = json.loads(result.to_json())
        assert parsed["name"] == name
        assert isinstance(parsed["rows"], list)
        for row in parsed["rows"]:
            assert isinstance(row, dict)

    def test_rows_follow_columns(self, study):
        result = study.artifact("table1")
        assert set(result.columns) == set(result.rows[0])

    def test_params_flow_through(self, study):
        assert len(study.artifact("table3", top=2).rows) <= 3  # overall + 2

    def test_report_shims_match_registry(self, study):
        from repro.core import report

        assert report.render_fig5(study.census) == study.artifact("fig5").to_text()
        assert report.render_table1(study.traffic) == study.artifact("table1").to_text()
