"""REP003 fixture: pickled reads outside the codec, unsafe np.load."""

import io
import pickle

import numpy as np


def read_anything(blob: bytes) -> object:
    return pickle.loads(blob)  # arbitrary code execution outside the codec


def read_file(path: str) -> object:
    with open(path, "rb") as handle:
        return pickle.load(handle)


def load_arrays(path: str) -> object:
    return np.load(path)  # no allow_pickle=False, and outside the codec


def load_with_objects(blob: bytes) -> object:
    return np.load(io.BytesIO(blob), allow_pickle=True)
