"""REP001 fixture: seeded, substream-routed randomness passes clean."""

import time

import numpy as np

from repro.util.rng import RngStream


def seeded_draws(seed: int) -> list:
    stream = RngStream(seed, "fixture")
    sub = stream.substream("traffic")
    generator = np.random.default_rng(1234)  # seeded construction is fine
    return [sub.random(), generator.random()]


def duration_of(fn) -> float:
    started = time.perf_counter()  # monotonic timing is not wall clock
    fn()
    return time.perf_counter() - started


def waived_stamp() -> float:
    # replint: allow[REP001] fixture: demonstrates a justified waiver
    return time.time()
