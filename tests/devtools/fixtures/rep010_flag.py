"""REP010 flag fixture: module-level ``*_COUNTS`` dicts off the registry."""

from collections import Counter

BUILD_COUNTS = Counter()

PROBE_COUNTS: Counter = Counter()

_ERROR_COUNTS = {"parse": 0, "timeout": 0}


def record(kind):
    BUILD_COUNTS[kind] += 1
