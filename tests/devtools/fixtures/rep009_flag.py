"""Flag fixture for REP009: ad-hoc retry/backoff loops."""

import asyncio
import time


def poll_until_ready(check):
    while not check():
        time.sleep(0.5)  # sleep-in-loop: hand-rolled polling backoff


def fetch_with_retries(fetch):
    for attempt in range(5):  # retry-shaped: range + swallow + continue
        try:
            return fetch()
        except OSError:
            time.sleep(2**attempt)  # and its backoff sleep
            continue
    raise RuntimeError("gave up")


async def drain(queue):
    while queue.pending():
        await asyncio.sleep(0.1)  # async flavour of the same ad-hoc loop
