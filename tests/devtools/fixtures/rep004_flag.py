"""REP004 fixture: artifacts missing needs, layers, or docstrings."""

from repro.api.registry import ArtifactResult, artifact


@artifact("fixture_no_needs", title="No needs")
def render_no_needs(study) -> ArtifactResult:
    """Declared nothing: its build cost is invisible."""
    return ArtifactResult()


@artifact("fixture_unknown_layer", needs=("warp_drive",))
def render_unknown_layer(study) -> ArtifactResult:
    """Declares a layer the registry does not know."""
    return ArtifactResult()


@artifact("fixture_no_docstring", needs=("traffic",))
def render_no_docstring(study) -> ArtifactResult:
    return ArtifactResult()


@artifact("fixture_empty_needs", needs=())
def render_empty_needs(study) -> ArtifactResult:
    """Declares an empty layer set."""
    return ArtifactResult()
