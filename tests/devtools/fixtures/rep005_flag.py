"""REP005 fixture: interventions with missing/empty/unknown LAYERS."""

from dataclasses import dataclass
from typing import ClassVar

from repro.whatif.spec import Intervention


@dataclass(frozen=True)
class ForgotLayers(Intervention):
    KIND: ClassVar[str] = "forgot"
    # no LAYERS declaration at all


@dataclass(frozen=True)
class EmptyLayers(Intervention):
    KIND: ClassVar[str] = "noop"
    LAYERS: ClassVar[frozenset] = frozenset()


@dataclass(frozen=True)
class UnknownLayers(Intervention):
    KIND: ClassVar[str] = "warp"
    LAYERS: ClassVar[frozenset] = frozenset({"warp_drive"})
