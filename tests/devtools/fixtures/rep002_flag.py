"""REP002 fixture: a module-level cache dict nothing ever registers."""

_ROGUE_CACHE: dict[tuple, object] = {}


def remember(key: tuple, value: object) -> object:
    return _ROGUE_CACHE.setdefault(key, value)
