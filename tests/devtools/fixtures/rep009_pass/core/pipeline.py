"""Pass fixture: loops and sleeps that are not retries."""

import time


def settle_once():
    time.sleep(0.1)  # a single sleep outside any loop is not a retry


def chunked(items, size):
    for start in range(0, len(items), size):  # plain range loop, no swallow
        yield items[start:start + size]


def first_parse(texts):
    for text in texts:  # exception handling without looping on failure
        try:
            return int(text)
        except ValueError:
            pass
    return None
