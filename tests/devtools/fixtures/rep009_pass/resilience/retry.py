"""Pass fixture: the shared policy's own backoff loop (resilience/ path)."""

import time


def call_with_retry(fn, attempts, delay):
    last = None
    for attempt in range(attempts):  # the one sanctioned retry loop
        try:
            return fn()
        except OSError as exc:
            last = exc
            time.sleep(delay * (attempt + 1))
            continue
    raise last
