"""REP006 fixture: the bincount group-by idiom passes clean."""

import numpy as np


def daily_totals(frame) -> dict:
    data = frame.data
    days = data["day"].astype(np.int64)
    totals = np.bincount(days - days.min(), weights=data["bytes"])
    uniq = np.unique(days)
    # Looping over *aggregated* outputs is fine: O(answer), not O(records).
    return {int(day): float(total) for day, total in zip(uniq, totals[uniq - days.min()])}


def interned_labels(frame) -> list:
    return [country for country in frame.countries]
