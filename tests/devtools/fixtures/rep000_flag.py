"""REP000 fixture: a waiver with no written justification is itself flagged."""

import time

# replint: allow[REP001]
STARTED = time.time()
