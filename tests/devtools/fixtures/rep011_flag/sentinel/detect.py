"""Flag corpus for REP011: thresholds hard-coded outside config.py."""

Z_WATCH = 2.5  # flagged: module-level float constant is a threshold knob


def severity_of(z_abs):
    if z_abs >= 5.0:  # flagged: float literal in a comparison
        return "critical"
    if z_abs > Z_WATCH + 1.0:  # arithmetic literal alone is fine...
        return "elevated"
    return "watch"


def eligible(sigma):
    return sigma > 0.01  # flagged: float literal in a comparison
