"""REP010 pass fixture: registry instruments, views waived, locals free."""

from repro.telemetry import counter_view, registry

_PROBES = registry().counter("probes_total", "probes issued, per kind", ("kind",))

# replint: allow[REP010] compatibility view over the probes_total registry instrument
PROBE_COUNTS = counter_view(_PROBES)


def summarize(events):
    # Function-local tallies never leak across runs; only module-level
    # bindings must live in the registry.
    local_counts = {}
    for event in events:
        local_counts[event] = local_counts.get(event, 0) + 1
    return local_counts
