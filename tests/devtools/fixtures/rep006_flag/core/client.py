"""REP006 fixture: per-record Python loops over frame columns."""


def per_record_rows(frame) -> int:
    total = 0
    for row in frame.data:  # one Python iteration per flow record
        total += int(row["bytes"])
    return total


def per_record_columns(data) -> int:
    total = 0
    for value in data["bytes"]:  # string-keyed structured column
        total += int(value)
    return total


def zipped_columns(frame) -> list:
    return [
        (day, size)
        for day, size in zip(frame.data["day"], frame.data["bytes"])
    ]


def listed_column(data) -> list:
    return [int(v) for v in data["packets"].tolist()]
