"""REP008 fixture: sorted set iteration yields a deterministic order."""


def label_rows(records) -> list:
    rows = []
    for rtype in sorted({r.resource_type for r in records}, key=lambda t: t.value):
        rows.append(rtype)
    return rows


def layer_rows() -> list:
    return [layer for layer in sorted(frozenset({"traffic", "census"}))]
