"""REP007 fixture: store-layer handlers that leave a trace pass clean."""

import logging
import warnings

log = logging.getLogger("repro.fixture")


def persist_logged(warehouse, name: str, payload: bytes) -> None:
    try:
        warehouse.put(name, payload)
    except OSError as exc:  # narrow except never flags
        log.warning("could not persist %r: %s", name, exc)
        raise


def persist_warned(warehouse, name: str, payload: bytes) -> None:
    try:
        warehouse.put(name, payload)
    except Exception as exc:
        # Broad, but the degradation is surfaced before continuing.
        warnings.warn(f"write-behind failed for {name!r}: {exc}", RuntimeWarning)
