"""Pass corpus for REP011: config.py is where thresholds belong."""

Z_WATCH = 2.5
Z_CRITICAL = 5.0
SIGMA_FLOOR = 0.01
