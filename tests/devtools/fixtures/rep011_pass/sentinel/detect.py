"""Pass corpus for REP011: detector compares against config attributes."""

from sentinel.config import SIGMA_FLOOR, Z_CRITICAL, Z_WATCH

MIN_HISTORY = 3  # int constants are structure, not threshold knobs


def severity_of(z_abs):
    if z_abs >= Z_CRITICAL:
        return "critical"
    if z_abs >= Z_WATCH:
        return "watch"
    return "quiet"


def eligible(sigma, points):
    return sigma > SIGMA_FLOOR and points >= MIN_HISTORY
