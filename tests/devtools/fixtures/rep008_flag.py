"""REP008 fixture: iterating sets in hash order."""


def label_rows(records) -> list:
    rows = []
    for rtype in {r.resource_type for r in records}:  # set-comp, hash order
        rows.append(rtype)
    return rows


def layer_rows() -> list:
    rows = []
    for layer in set(["traffic", "census"]):  # set() call, hash order
        rows.append(layer)
    return rows


def literal_rows() -> list:
    return [name for name in {"alpha", "beta", "gamma"}]  # set literal
