"""REP012 pass fixture: serving code uses the repro.prof API instead of
importing the profiler directly."""

from repro.prof import profiled_spans, profiling
from repro.telemetry import recent_spans, span


def profiled_request():
    with profiling(spans=("serve:request",)):
        with span("serve:request"):
            pass
    return profiled_spans(recent_spans())
