"""REP012 pass fixture: the prof package may import the profiler, and
code elsewhere may use the repro.prof API (no direct profiler import)."""

import cProfile
import pstats
import tracemalloc


def capture():
    profiler = cProfile.Profile()
    tracemalloc.start()
    profiler.enable()
    profiler.disable()
    tracemalloc.stop()
    return pstats.Stats(profiler)
