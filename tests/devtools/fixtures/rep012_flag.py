"""REP012 flag fixture: profiler imports outside repro/prof/."""

import cProfile  # REP012: profiler import outside prof/
import tracemalloc  # REP012: tracemalloc import outside prof/
from pstats import Stats  # REP012: pstats import outside prof/


def profile_a_build():
    profiler = cProfile.Profile()
    tracemalloc.start()
    profiler.enable()
    profiler.disable()
    return Stats(profiler)
