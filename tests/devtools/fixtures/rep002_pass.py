"""REP002 fixture: caches registered in the ``_ALL_CACHES`` literal (or
via explicit subscript registration) pass clean."""

_LAYER_CACHE: dict[tuple, object] = {}
_LATE_CACHE: dict[tuple, object] = {}

_ALL_CACHES: dict[str, dict] = {
    "layer": _LAYER_CACHE,
}

_ALL_CACHES["late"] = _LATE_CACHE


def remember(key: tuple, value: object) -> object:
    return _LAYER_CACHE.setdefault(key, value)
