"""REP007 fixture: swallowed errors in a serving handler."""


def render_or_none(render, name: str):
    try:
        return render(name)
    except:  # bare except, always flagged
        return None


def persist_best_effort(warehouse, name: str, payload: bytes) -> None:
    try:
        warehouse.put(name, payload)
    except Exception:
        pass  # swallowed without a trace


def probe(client) -> None:
    try:
        client.ping()
    except (OSError, Exception):
        ...  # Exception inside a tuple, body does nothing: still swallowed
