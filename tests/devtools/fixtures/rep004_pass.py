"""REP004 fixture: a fully-declared, documented artifact passes clean."""

from repro.api.registry import ArtifactResult, artifact


@artifact(
    "fixture_table",
    needs=("traffic", "census"),
    title="A fixture artifact",
    paper="Table 0",
)
def render_fixture_table(study) -> ArtifactResult:
    """One line of description for ``repro list``."""
    return ArtifactResult(columns=("a",), rows=[{"a": 1}])
