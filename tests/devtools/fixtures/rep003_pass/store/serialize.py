"""REP003 fixture: the codec module itself may unpickle -- pickle-safe."""

import io
import pickle

import numpy as np


class Unpickler(pickle.Unpickler):
    pass


def read_codec_blob(blob: bytes) -> object:
    return Unpickler(io.BytesIO(blob)).load()


def load_arrays(blob: bytes) -> dict:
    with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
        return dict(npz)
