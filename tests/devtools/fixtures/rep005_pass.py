"""REP005 fixture: a declared, in-vocabulary intervention passes clean."""

from dataclasses import dataclass
from typing import ClassVar

from repro.whatif.spec import Intervention


@dataclass(frozen=True)
class CutCable(Intervention):
    """An undersea cable cut takes out observatory vantages."""

    KIND: ClassVar[str] = "cablecut"
    LAYERS: ClassVar[frozenset] = frozenset({"observatory", "traffic"})
