"""REP001 fixture: every ambient-entropy idiom the rule must flag."""

import os
import random
import time
import uuid
from datetime import date, datetime

import numpy as np


def unseeded_draws() -> list:
    return [
        random.random(),  # stdlib global RNG
        random.randint(1, 6),
        np.random.seed(42),  # legacy numpy global state
        np.random.rand(3),
    ]


def wall_clock() -> tuple:
    return (
        time.time(),
        datetime.now(),
        datetime.utcnow(),
        date.today(),
    )


def ambient_entropy() -> tuple:
    return os.urandom(8), uuid.uuid4()
