"""The tree gate: replint runs clean over its own source, and fast."""

from __future__ import annotations

import time

from repro.devtools.lint import default_lint_root, lint_repo


def test_source_tree_is_clean_and_fast():
    started = time.perf_counter()
    violations = lint_repo()
    elapsed = time.perf_counter() - started
    assert violations == [], "\n".join(v.format(fix_hints=True) for v in violations)
    assert elapsed < 5.0, f"replint took {elapsed:.2f}s over {default_lint_root()}"


def test_lint_root_is_the_repro_parent():
    root = default_lint_root()
    assert (root / "repro" / "__init__.py").is_file()
