"""CLI contract: exit codes, JSON shape, rule selection, baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint.baseline import load_baseline, new_violations, write_baseline
from repro.devtools.lint.cli import main
from repro.devtools.lint.engine import Violation

FIXTURES = Path(__file__).parent / "fixtures"


def make_clean_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "clean"
    tree.mkdir()
    (tree / "mod.py").write_text('"""Nothing to flag."""\n\nANSWER = 42\n')
    return tree


def make_dirty_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "dirty"
    tree.mkdir()
    (tree / "mod.py").write_text("import time\n\nSTAMP = time.time()\n")
    return tree


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main([str(make_clean_tree(tmp_path))]) == 0
        assert "0 new violation(s)" in capsys.readouterr().err

    def test_violations_exit_one(self, tmp_path, capsys):
        assert main([str(make_dirty_tree(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "mod.py:3" in out

    def test_fixture_corpus_exits_one(self, capsys):
        assert main([str(FIXTURES / "rep001_flag.py")]) == 1

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--rule", "REP042", str(make_clean_tree(tmp_path))])
        assert excinfo.value.code == 2


class TestRuleSelection:
    def test_rule_filter_narrows_the_run(self, capsys):
        assert main(["--rule", "REP008", str(FIXTURES / "rep001_flag.py")]) == 0
        assert main(["--rule", "REP001", str(FIXTURES / "rep001_flag.py")]) == 1

    def test_list_rules_documents_all_ids(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP000", "REP001", "REP002", "REP003", "REP004",
                        "REP005", "REP006", "REP007", "REP008"):
            assert rule_id in out

    def test_fix_hints_append_hint_lines(self, tmp_path, capsys):
        main(["--fix-hints", str(make_dirty_tree(tmp_path))])
        assert "hint:" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_document_shape(self, tmp_path, capsys):
        code = main(["--format", "json", str(make_dirty_tree(tmp_path))])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["total"] == document["new"] == 1
        assert document["baselined"] == 0
        assert document["elapsed_s"] >= 0
        assert "REP001" in document["rules"]
        (violation,) = document["violations"]
        assert violation["rule"] == "REP001"
        assert violation["path"] == "mod.py"
        assert violation["line"] == 3
        assert violation["fingerprint"]

    def test_json_clean_run(self, tmp_path, capsys):
        assert main(["--format", "json", str(make_clean_tree(tmp_path))]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["violations"] == []


class TestBaseline:
    def test_write_then_lint_against_baseline_exits_zero(self, tmp_path, capsys):
        tree = make_dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--write-baseline", str(baseline)]) == 0
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_new_violation_beyond_baseline_exits_one(self, tmp_path, capsys):
        tree = make_dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(tree), "--write-baseline", str(baseline)])
        (tree / "mod.py").write_text(
            "import time\n\nSTAMP = time.time()\nOTHER = time.time_ns()\n"
        )
        assert main([str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "time_ns" in out
        assert out.count("REP001") == 1  # the old stamp stays accepted

    def test_baseline_survives_line_shift(self, tmp_path, capsys):
        tree = make_dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(tree), "--write-baseline", str(baseline)])
        (tree / "mod.py").write_text(
            '"""A new docstring shifts every line."""\n\n'
            "import time\n\n\nSTAMP = time.time()\n"
        )
        assert main([str(tree), "--baseline", str(baseline)]) == 0

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        tree = make_dirty_tree(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main([str(tree), "--baseline", str(bad)])
        assert excinfo.value.code == 2

    def test_version_mismatch_rejected(self, tmp_path):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(stale)

    def test_multiset_semantics(self, tmp_path):
        twin = Violation("REP001", "repro/x.py", 3, 0, "m", snippet="t = time.time()")
        other = Violation(
            "REP001", "repro/x.py", 9, 0, "m", snippet="u = time.time()"
        )
        baseline = tmp_path / "twins.json"
        write_baseline(baseline, [twin, twin])
        accepted = load_baseline(baseline)
        assert new_violations([twin, twin], accepted) == []
        assert new_violations([twin, twin, twin], accepted) == [twin]
        assert new_violations([twin, other], accepted) == [other]
