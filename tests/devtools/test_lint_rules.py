"""Fixture-driven coverage: one flagging and one passing corpus per rule.

Directory fixtures (rep003_pass, rep006_*, rep007_*) are linted as
directories so their relpaths (``store/serialize.py``, ``core/client.py``,
``serve/handlers.py``) engage the rules' path scoping exactly as the real
tree does.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import WAIVER_RULE_ID, default_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule id, fixture path relative to FIXTURES, expected violation count).
FLAG_CASES = [
    ("REP001", "rep001_flag.py", 10),
    ("REP002", "rep002_flag.py", 1),
    ("REP003", "rep003_flag.py", 6),
    ("REP004", "rep004_flag.py", 4),
    ("REP005", "rep005_flag.py", 3),
    ("REP006", "rep006_flag", 4),
    ("REP007", "rep007_flag", 3),
    ("REP008", "rep008_flag.py", 3),
    ("REP009", "rep009_flag.py", 4),
    ("REP010", "rep010_flag.py", 3),
    ("REP011", "rep011_flag", 3),
    ("REP012", "rep012_flag.py", 3),
]

PASS_CASES = [
    ("REP001", "rep001_pass.py"),
    ("REP002", "rep002_pass.py"),
    ("REP003", "rep003_pass"),
    ("REP004", "rep004_pass.py"),
    ("REP005", "rep005_pass.py"),
    ("REP006", "rep006_pass"),
    ("REP007", "rep007_pass"),
    ("REP008", "rep008_pass.py"),
    ("REP009", "rep009_pass"),
    ("REP010", "rep010_pass.py"),
    ("REP011", "rep011_pass"),
    ("REP012", "rep012_pass"),
]


def run(fixture: str, rule: str):
    return lint_paths([FIXTURES / fixture], default_rules(), select=[rule])


@pytest.mark.parametrize(("rule", "fixture", "expected"), FLAG_CASES)
def test_flag_fixture_trips_its_rule(rule, fixture, expected):
    violations = run(fixture, rule)
    assert [v.rule for v in violations] == [rule] * expected
    for violation in violations:
        assert violation.line >= 1
        assert violation.path.endswith(".py")
        assert violation.message


@pytest.mark.parametrize(("rule", "fixture"), PASS_CASES)
def test_pass_fixture_stays_clean(rule, fixture):
    assert run(fixture, rule) == []


def test_unjustified_waiver_flags_rep000_and_keeps_the_violation():
    violations = lint_paths([FIXTURES / "rep000_flag.py"], default_rules())
    assert sorted(v.rule for v in violations) == [WAIVER_RULE_ID, "REP001"]


def test_every_rule_carries_a_fix_hint():
    for rule in default_rules():
        assert rule.id.startswith("REP")
        assert rule.title
        assert rule.hint
    assert [r.id for r in default_rules()] == sorted(r.id for r in default_rules())


def test_rules_are_fresh_instances_per_run():
    first, second = default_rules(), default_rules()
    assert all(a is not b for a, b in zip(first, second))
