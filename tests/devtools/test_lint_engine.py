"""Engine mechanics: waivers, fingerprints, parse failures, selection."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import WAIVER_RULE_ID, default_rules, lint_paths
from repro.devtools.lint.engine import Violation, collect_python_files


def lint_source(tmp_path: Path, source: str, *, name: str = "mod.py", select=None):
    file = tmp_path / name
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], default_rules(), select=select)


class TestWaivers:
    def test_same_line_waiver_with_reason_suppresses(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time

            STAMP = time.time()  # replint: allow[REP001] telemetry only, never artifact data
            """,
        )
        assert violations == []

    def test_standalone_comment_waiver_covers_next_line(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time

            # replint: allow[REP001] telemetry only, never artifact data
            STAMP = time.time()
            """,
        )
        assert violations == []

    def test_waiver_without_reason_is_rep000_and_does_not_suppress(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time

            STAMP = time.time()  # replint: allow[REP001]
            """,
        )
        rules = sorted(v.rule for v in violations)
        assert rules == [WAIVER_RULE_ID, "REP001"]

    def test_waiver_for_a_different_rule_does_not_suppress(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time

            STAMP = time.time()  # replint: allow[REP008] wrong rule entirely
            """,
        )
        assert [v.rule for v in violations] == ["REP001"]

    def test_multi_rule_waiver_parses(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time
            import random

            # replint: allow[REP001, REP008] both stamp calls are startup telemetry
            PAIR = (time.time(), random.random())
            """,
        )
        assert violations == []


class TestFingerprints:
    def test_fingerprint_survives_line_shift(self):
        a = Violation("REP001", "repro/x.py", 10, 4, "m", snippet="    t = time.time()")
        b = Violation("REP001", "repro/x.py", 99, 4, "m", snippet="t = time.time()")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_changes_with_line_text(self):
        a = Violation("REP001", "repro/x.py", 10, 4, "m", snippet="t = time.time()")
        b = Violation("REP001", "repro/x.py", 10, 4, "m", snippet="u = time.time()")
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_changes_with_rule_and_path(self):
        a = Violation("REP001", "repro/x.py", 10, 4, "m", snippet="s")
        b = Violation("REP008", "repro/x.py", 10, 4, "m", snippet="s")
        c = Violation("REP001", "repro/y.py", 10, 4, "m", snippet="s")
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3


class TestParseFailures:
    def test_syntax_error_becomes_rep999(self, tmp_path):
        violations = lint_source(tmp_path, "def broken(:\n    pass\n")
        assert [v.rule for v in violations] == ["REP999"]
        assert "could not parse" in violations[0].message

    def test_rep999_survives_rule_selection(self, tmp_path):
        violations = lint_source(tmp_path, "def broken(:\n", select=["REP008"])
        assert [v.rule for v in violations] == ["REP999"]


class TestCollection:
    def test_directory_roots_yield_posix_relpaths(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("import time\nT = time.time()\n")
        violations = lint_paths([tmp_path], default_rules())
        assert violations[0].path == "pkg/mod.py"

    def test_single_file_argument(self, tmp_path):
        file = tmp_path / "solo.py"
        file.write_text("import time\nT = time.time()\n")
        violations = lint_paths([file], default_rules())
        assert [v.path for v in violations] == ["solo.py"]

    def test_non_python_path_rejected(self, tmp_path):
        stray = tmp_path / "notes.txt"
        stray.write_text("hello")
        with pytest.raises(FileNotFoundError):
            collect_python_files([stray])

    def test_select_filters_rules(self, tmp_path):
        violations = lint_source(
            tmp_path,
            """\
            import time

            T = time.time()
            NAMES = [n for n in {"a", "b"}]
            """,
            select=["REP008"],
        )
        assert [v.rule for v in violations] == ["REP008"]
