"""The process-pool fallback contract: degrade loudly, but only once.

Traffic generation, observatory probe rounds, and whatif sweeps all fan
out through :func:`repro.util.procpool.map_in_pool`; on a host that
cannot run a process pool each of them degrades to its sequential path.
These tests pin the deduplication: exactly **one** ``RuntimeWarning``
per process no matter how many subsystems fall back, with every
fallback still recorded in :func:`fallback_contexts`.
"""

import warnings

import pytest

from repro.util.procpool import (
    fallback_contexts,
    map_in_pool,
    reset_pool_fallback_warnings,
    resolve_worker_count,
    warn_pool_fallback,
)


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_pool_fallback_warnings()
    yield
    reset_pool_fallback_warnings()


_INIT_STATE: dict = {}


def _square(task):  # top-level: must pickle into real worker processes
    return task * task


def _remember(value):
    _INIT_STATE["value"] = value


def _offset(task):
    return _INIT_STATE["value"] + task


class TestOneWarningPerProcess:
    def test_exactly_one_warning_across_subsystem_contexts(self):
        """The satellite contract: traffic + observatory + whatif sweep
        fallbacks in one process emit exactly one warning."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_pool_fallback("traffic generation", "sandbox denies fork")
            warn_pool_fallback("observatory probe rounds", "sandbox denies fork")
            warn_pool_fallback("whatif sweep", "sandbox denies fork")
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        message = str(runtime[0].message)
        assert "traffic generation" in message  # the first context names itself
        assert "once per process" in message

    def test_every_fallback_context_is_still_recorded(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warn_pool_fallback("traffic generation", "no fork")
            warn_pool_fallback("observatory probe rounds", "no fork")
            warn_pool_fallback("observatory probe rounds", "again")
            warn_pool_fallback("whatif sweep", "no fork")
        assert fallback_contexts() == (
            "traffic generation",
            "observatory probe rounds",
            "whatif sweep",
        )

    def test_reset_restores_the_warning(self):
        with pytest.warns(RuntimeWarning):
            warn_pool_fallback("ctx-a", "reason")
        reset_pool_fallback_warnings()
        assert fallback_contexts() == ()
        with pytest.warns(RuntimeWarning):
            warn_pool_fallback("ctx-b", "reason")

    def test_map_in_pool_broken_pool_warns_once_across_contexts(self, monkeypatch):
        """The real entry point: two different fan-outs, one warning."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.util.procpool as procpool_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise BrokenProcessPool("no pool in this sandbox")

        monkeypatch.setattr(procpool_module, "ProcessPoolExecutor", ExplodingPool)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert map_in_pool(abs, [1, 2], 2, "traffic generation") is None
            assert map_in_pool(abs, [1, 2], 2, "observatory probe rounds") is None
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert fallback_contexts() == (
            "traffic generation",
            "observatory probe rounds",
        )


class TestShardResubmission:
    """A pool that breaks *mid-map* loses only its crashed shards.

    Crashes are injected deterministically (seeded ``worker-crash``
    plans fire :class:`BrokenProcessPool` at scheduled shard indices
    during collection), so these run against real worker processes with
    a replayable failure pattern.
    """

    def test_lost_shards_rerun_and_results_match_sequential(self):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults
        from repro.util.procpool import resubmitted_shards

        tasks = list(range(8))
        plan = FaultPlan([FaultSpec("worker-crash", count=2, horizon=8)], seed=7)
        with inject_faults(plan):
            with pytest.warns(RuntimeWarning, match="re-running 2 lost"):
                results = map_in_pool(_square, tasks, 2, "traffic generation")
        assert results == [task * task for task in tasks]  # bit-identical
        assert resubmitted_shards() == (("traffic generation", 2),)
        assert plan.fired() == {"worker-crash": 2}
        assert fallback_contexts() == ()  # recovery, not a full fallback

    def test_total_crash_still_recovers_every_shard(self):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults
        from repro.util.procpool import resubmitted_shards

        plan = FaultPlan([FaultSpec("worker-crash", count=4, horizon=4)], seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with inject_faults(plan):
                results = map_in_pool(_square, [1, 2, 3, 4], 2, "whatif sweep")
        assert results == [1, 4, 9, 16]
        assert resubmitted_shards() == (("whatif sweep", 4),)

    def test_resubmission_warns_once_per_process(self):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults
        from repro.util.procpool import resubmitted_shards

        plan = FaultPlan([FaultSpec("worker-crash", count=4, horizon=4)], seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with inject_faults(plan):
                map_in_pool(_square, [1, 2], 2, "traffic generation")
                map_in_pool(_square, [3, 4], 2, "observatory probe rounds")
        crashes = [w for w in caught if "crashed mid-map" in str(w.message)]
        assert len(crashes) == 1
        assert resubmitted_shards() == (
            ("traffic generation", 2),
            ("observatory probe rounds", 2),
        )

    def test_initializer_reruns_in_the_parent_for_lost_shards(self):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults

        _INIT_STATE["value"] = None  # parent state the initializer must set
        plan = FaultPlan([FaultSpec("worker-crash", count=2, horizon=2)], seed=1)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with inject_faults(plan):
                    results = map_in_pool(
                        _offset, [10, 20], 2, "traffic generation",
                        initializer=_remember, initargs=(100,),
                    )
            assert results == [110, 120]
            assert _INIT_STATE["value"] == 100  # re-ran here, not just in workers
        finally:
            _INIT_STATE.clear()


class TestWorkerCount:
    def test_resolution_contract_unchanged(self):
        assert resolve_worker_count(False, 10) == 1
        assert resolve_worker_count(0, 10) == 1
        assert resolve_worker_count(4, 10) == 4
        assert resolve_worker_count(4, 2) == 2  # never more workers than tasks
        assert resolve_worker_count(None, 0) == 1
