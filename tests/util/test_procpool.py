"""The process-pool fallback contract: degrade loudly, but only once.

Traffic generation, observatory probe rounds, and whatif sweeps all fan
out through :func:`repro.util.procpool.map_in_pool`; on a host that
cannot run a process pool each of them degrades to its sequential path.
These tests pin the deduplication: exactly **one** ``RuntimeWarning``
per process no matter how many subsystems fall back, with every
fallback still recorded in :func:`fallback_contexts`.
"""

import warnings

import pytest

from repro.util.procpool import (
    fallback_contexts,
    map_in_pool,
    reset_pool_fallback_warnings,
    resolve_worker_count,
    warn_pool_fallback,
)


@pytest.fixture(autouse=True)
def _fresh_process_state():
    reset_pool_fallback_warnings()
    yield
    reset_pool_fallback_warnings()


class TestOneWarningPerProcess:
    def test_exactly_one_warning_across_subsystem_contexts(self):
        """The satellite contract: traffic + observatory + whatif sweep
        fallbacks in one process emit exactly one warning."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_pool_fallback("traffic generation", "sandbox denies fork")
            warn_pool_fallback("observatory probe rounds", "sandbox denies fork")
            warn_pool_fallback("whatif sweep", "sandbox denies fork")
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        message = str(runtime[0].message)
        assert "traffic generation" in message  # the first context names itself
        assert "once per process" in message

    def test_every_fallback_context_is_still_recorded(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warn_pool_fallback("traffic generation", "no fork")
            warn_pool_fallback("observatory probe rounds", "no fork")
            warn_pool_fallback("observatory probe rounds", "again")
            warn_pool_fallback("whatif sweep", "no fork")
        assert fallback_contexts() == (
            "traffic generation",
            "observatory probe rounds",
            "whatif sweep",
        )

    def test_reset_restores_the_warning(self):
        with pytest.warns(RuntimeWarning):
            warn_pool_fallback("ctx-a", "reason")
        reset_pool_fallback_warnings()
        assert fallback_contexts() == ()
        with pytest.warns(RuntimeWarning):
            warn_pool_fallback("ctx-b", "reason")

    def test_map_in_pool_broken_pool_warns_once_across_contexts(self, monkeypatch):
        """The real entry point: two different fan-outs, one warning."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.util.procpool as procpool_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise BrokenProcessPool("no pool in this sandbox")

        monkeypatch.setattr(procpool_module, "ProcessPoolExecutor", ExplodingPool)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert map_in_pool(abs, [1, 2], 2, "traffic generation") is None
            assert map_in_pool(abs, [1, 2], 2, "observatory probe rounds") is None
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert fallback_contexts() == (
            "traffic generation",
            "observatory probe rounds",
        )


class TestWorkerCount:
    def test_resolution_contract_unchanged(self):
        assert resolve_worker_count(False, 10) == 1
        assert resolve_worker_count(0, 10) == 1
        assert resolve_worker_count(4, 10) == 4
        assert resolve_worker_count(4, 2) == 2  # never more workers than tasks
        assert resolve_worker_count(None, 0) == 1
