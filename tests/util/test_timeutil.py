"""Tests for simulated time helpers."""

import pytest

from repro.util.timeutil import (
    DAY,
    HOUR,
    SimClock,
    TimeWindow,
    day_index,
    day_of_week,
    hour_of_day,
    is_weekend,
)


class TestDayHelpers:
    def test_day_index(self):
        assert day_index(0.0) == 0
        assert day_index(DAY - 1) == 0
        assert day_index(DAY) == 1
        assert day_index(10 * DAY + 5) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            day_index(-1.0)
        with pytest.raises(ValueError):
            hour_of_day(-0.5)

    def test_hour_of_day(self):
        assert hour_of_day(0.0) == 0.0
        assert hour_of_day(HOUR * 13.5) == 13.5
        assert hour_of_day(DAY + HOUR * 2) == 2.0

    def test_day_of_week_starts_monday(self):
        assert day_of_week(0.0) == 0  # Monday
        assert day_of_week(5 * DAY) == 5  # Saturday
        assert day_of_week(7 * DAY) == 0  # next Monday

    def test_is_weekend(self):
        assert not is_weekend(4 * DAY)  # Friday
        assert is_weekend(5 * DAY)  # Saturday
        assert is_weekend(6 * DAY + HOUR)  # Sunday
        assert not is_weekend(7 * DAY)  # Monday


class TestTimeWindow:
    def test_duration_and_days(self):
        window = TimeWindow(start=0.0, end=3 * DAY)
        assert window.duration == 3 * DAY
        assert window.num_days == 3
        assert list(window.days()) == [0, 1, 2]

    def test_partial_days_counted(self):
        window = TimeWindow(start=DAY / 2, end=DAY + HOUR)
        assert window.num_days == 2
        assert list(window.days()) == [0, 1]

    def test_contains(self):
        window = TimeWindow(start=10.0, end=20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert not window.contains(9.0)

    def test_from_days(self):
        window = TimeWindow.from_days(2, 5)
        assert window.start == 2 * DAY
        assert window.end == 7 * DAY
        assert window.num_days == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            TimeWindow(start=5.0, end=5.0)
        with pytest.raises(ValueError):
            TimeWindow.from_days(0, 0)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_to_never_backwards(self):
        clock = SimClock(start=100.0)
        clock.advance_to(50.0)
        assert clock.now == 100.0
        clock.advance_to(150.0)
        assert clock.now == 150.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)
