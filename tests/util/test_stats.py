"""Tests for empirical statistics: CDFs, box stats, Wilcoxon, Holm."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    HolmBonferroni,
    box_stats,
    empirical_cdf,
    holm_bonferroni,
    quantile,
    wilcoxon_signed_rank,
)


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3, 1, 2], 0.5) == 2.0

    def test_endpoints(self):
        values = [5.0, 1.0, 9.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 9.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestEmpiricalCdf:
    def test_simple(self):
        cdf = empirical_cdf([1.0, 2.0, 2.0, 4.0])
        assert cdf.points == (1.0, 2.0, 4.0)
        assert cdf.fractions == (0.25, 0.75, 1.0)

    def test_fraction_at_or_below(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_or_below(0.5) == 0.0
        assert cdf.fraction_at_or_below(2.0) == 0.5
        assert cdf.fraction_at_or_below(2.5) == 0.5
        assert cdf.fraction_at_or_below(100.0) == 1.0

    def test_value_at_fraction(self):
        cdf = empirical_cdf([10.0, 20.0, 30.0, 40.0])
        assert cdf.value_at_fraction(0.25) == 10.0
        assert cdf.value_at_fraction(0.5) == 20.0
        assert cdf.value_at_fraction(1.0) == 40.0

    def test_value_at_fraction_invalid(self):
        cdf = empirical_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.value_at_fraction(0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_mismatched_construction_raises(self):
        from repro.util.stats import Cdf

        with pytest.raises(ValueError):
            Cdf((1.0,), (0.5, 1.0))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_monotone_and_ends_at_one(self, values):
        cdf = empirical_cdf(values)
        assert all(
            cdf.fractions[i] < cdf.fractions[i + 1] for i in range(len(cdf.fractions) - 1)
        )
        assert math.isclose(cdf.fractions[-1], 1.0)
        assert all(
            cdf.points[i] < cdf.points[i + 1] for i in range(len(cdf.points) - 1)
        )


class TestBoxStats:
    def test_known_values(self):
        stats = box_stats([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100])
        assert stats.median == 6.0
        assert stats.n == 11
        assert 100.0 in stats.outliers
        assert stats.whisker_high < 100.0

    def test_no_outliers(self):
        stats = box_stats([1.0, 2.0, 3.0])
        assert stats.outliers == ()
        assert stats.whisker_low == 1.0
        assert stats.whisker_high == 3.0

    def test_single_value(self):
        stats = box_stats([5.0])
        assert stats.median == 5.0
        assert stats.iqr == 0.0
        assert stats.outliers == ()

    def test_empty(self):
        with pytest.raises(ValueError):
            box_stats([])

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=60))
    def test_invariants(self, values):
        stats = box_stats(values)
        assert stats.minimum <= stats.p25 <= stats.median <= stats.p75 <= stats.maximum
        assert stats.minimum <= stats.whisker_low <= stats.whisker_high <= stats.maximum
        # Whiskers sit inside the 1.5*IQR fences.
        assert stats.whisker_low >= stats.p25 - 1.5 * stats.iqr - 1e-9 * abs(stats.p25)
        assert stats.whisker_high <= stats.p75 + 1.5 * stats.iqr + 1e-9 * abs(stats.p75)
        # Every outlier lies strictly outside the whisker range.
        for outlier in stats.outliers:
            assert outlier < stats.whisker_low or outlier > stats.whisker_high
        assert len(stats.outliers) < stats.n or stats.n == 0


class TestWilcoxon:
    def test_matches_scipy_no_ties(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.3, 1.0, size=40)
        y = rng.normal(0.0, 1.0, size=40)
        ours = wilcoxon_signed_rank(x, y, zero_method="wilcox")
        theirs = scipy.stats.wilcoxon(
            x, y, zero_method="wilcox", correction=False, mode="approx"
        )
        assert math.isclose(ours.statistic, theirs.statistic)
        assert math.isclose(ours.p_value, theirs.pvalue, rel_tol=1e-9)

    def test_matches_scipy_pratt(self):
        x = [0.1, 0.2, 0.0, 0.4, 0.3, 0.0, 0.9, 0.5]
        y = [0.0, 0.2, 0.0, 0.1, 0.5, 0.0, 0.2, 0.1]
        ours = wilcoxon_signed_rank(x, y, zero_method="pratt")
        theirs = scipy.stats.wilcoxon(
            x, y, zero_method="pratt", correction=False, mode="approx"
        )
        assert math.isclose(ours.statistic, theirs.statistic)
        assert math.isclose(ours.p_value, theirs.pvalue, rel_tol=1e-9)

    def test_effect_size_sign(self):
        first = [1.0, 0.9, 1.0, 0.8, 1.0, 0.95]
        second = [0.0, 0.1, 0.2, 0.0, 0.3, 0.05]
        result = wilcoxon_signed_rank(first, second)
        assert result.effect_size > 0.9
        swapped = wilcoxon_signed_rank(second, first)
        assert math.isclose(swapped.effect_size, -result.effect_size)

    def test_effect_size_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.random(15)
            y = rng.random(15)
            result = wilcoxon_signed_rank(x, y)
            assert -1.0 <= result.effect_size <= 1.0
            assert 0.0 <= result.p_value <= 1.0

    def test_all_zero_differences(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])

    def test_unknown_zero_method(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0, 0.0], [0.0, 1.0], zero_method="bogus")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=6,
            max_size=50,
        )
    )
    def test_symmetry_property(self, pairs):
        """Swapping the samples must flip z and effect size."""
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        try:
            forward = wilcoxon_signed_rank(x, y)
        except ValueError:
            return  # degenerate inputs (all-zero diffs / zero variance)
        backward = wilcoxon_signed_rank(y, x)
        assert math.isclose(forward.effect_size, -backward.effect_size, abs_tol=1e-12)
        assert math.isclose(forward.p_value, backward.p_value, rel_tol=1e-9)


class TestHolmBonferroni:
    def test_textbook_example(self):
        # Holm 1979-style example: p = .01, .04, .03, .005 at alpha=.05
        rejections = holm_bonferroni([0.01, 0.04, 0.03, 0.005], alpha=0.05)
        assert rejections == [True, False, False, True]

    def test_all_significant(self):
        assert holm_bonferroni([0.001, 0.002], alpha=0.05) == [True, True]

    def test_none_significant(self):
        assert holm_bonferroni([0.9, 0.8, 0.7]) == [False, False, False]

    def test_empty(self):
        assert holm_bonferroni([]) == []

    def test_stepdown_blocks_later_hypotheses(self):
        # Second-smallest (0.03 > 0.05/2) fails, so 0.04 is blocked too even
        # though 0.04 <= 0.05/1 on its own.
        rejections = holm_bonferroni([0.001, 0.04, 0.03], alpha=0.05)
        assert rejections == [True, False, False]

    def test_invalid_p_value(self):
        corrector = HolmBonferroni()
        with pytest.raises(ValueError):
            corrector.add(1.5)

    def test_adjusted_p_values_monotone_in_raw_order(self):
        corrector = HolmBonferroni()
        raw = [0.01, 0.005, 0.2, 0.04]
        for p in raw:
            corrector.add(p)
        adjusted = corrector.adjusted_p_values()
        assert len(adjusted) == 4
        assert all(a >= r for a, r in zip(adjusted, raw))
        assert all(0 <= a <= 1 for a in adjusted)
        # Adjusted ordering must follow raw ordering.
        order_raw = sorted(range(4), key=lambda i: raw[i])
        adj_in_order = [adjusted[i] for i in order_raw]
        assert adj_in_order == sorted(adj_in_order)

    def test_rejections_match_adjusted(self):
        raw = [0.001, 0.02, 0.03, 0.5, 0.04]
        corrector = HolmBonferroni(alpha=0.05)
        for p in raw:
            corrector.add(p)
        rejected = corrector.rejections()
        adjusted = corrector.adjusted_p_values()
        for r, a in zip(rejected, adjusted):
            assert r == (a <= 0.05)
