"""Tests for deterministic RNG streams."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "traffic") == derive_seed(42, "traffic")

    def test_label_sensitivity(self):
        assert derive_seed(42, "traffic") != derive_seed(42, "web")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "traffic") != derive_seed(2, "traffic")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(123456789, "x") < 2**64

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=30))
    def test_always_in_range(self, seed, label):
        assert 0 <= derive_seed(seed, label) < 2**64


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_diverge(self):
        a = RngStream(7, "x")
        b = RngStream(7, "y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_substream_independent_of_parent_consumption(self):
        parent1 = RngStream(7, "p")
        parent2 = RngStream(7, "p")
        parent2.random()  # consuming the parent must not shift substreams
        sub1 = parent1.substream("child")
        sub2 = parent2.substream("child")
        assert [sub1.random() for _ in range(5)] == [sub2.random() for _ in range(5)]

    def test_randint_inclusive_bounds(self):
        stream = RngStream(1)
        draws = {stream.randint(0, 2) for _ in range(200)}
        assert draws == {0, 1, 2}

    def test_bernoulli_extremes(self):
        stream = RngStream(1)
        assert not any(stream.bernoulli(0.0) for _ in range(50))
        assert all(stream.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_clamps_out_of_range(self):
        stream = RngStream(1)
        assert stream.bernoulli(2.0) is True
        assert stream.bernoulli(-1.0) is False

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream(1).choice([])

    def test_choice_single(self):
        assert RngStream(1).choice(["only"]) == "only"

    def test_sample_k_larger_than_population(self):
        result = RngStream(1).sample([1, 2, 3], 10)
        assert sorted(result) == [1, 2, 3]

    def test_sample_distinct(self):
        result = RngStream(1).sample(list(range(100)), 10)
        assert len(result) == len(set(result)) == 10

    def test_weighted_choice_validates(self):
        stream = RngStream(1)
        with pytest.raises(ValueError):
            stream.weighted_choice([1, 2], [1.0])
        with pytest.raises(ValueError):
            stream.weighted_choice([], [])
        with pytest.raises(ValueError):
            stream.weighted_choice([1, 2], [0.0, 0.0])
        with pytest.raises(ValueError):
            # positive total but a negative entry: would build a
            # non-monotonic CDF if not rejected up front
            stream.weighted_choice([1, 2, 3], [3.0, -1.0, 2.0])

    def test_weighted_choice_matches_generator_choice(self):
        """The inverse-CDF fast path must consume the stream exactly like
        the Generator.choice(n, p=...) it replaced (twin streams, one
        drawing each way, must agree draw for draw)."""
        import numpy as np

        weights = [3.0, 1.0, 2.0, 4.0]
        probs = np.asarray(weights) / sum(weights)
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        for _ in range(200):
            got = a.weighted_choice([0, 1, 2, 3], weights)
            want = int(b._gen.choice(4, p=probs))
            assert got == want

    def test_weighted_choice_respects_zero_weight(self):
        stream = RngStream(1)
        draws = {stream.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert draws == {"a"}

    def test_zipf_rank_bounds(self):
        stream = RngStream(3)
        ranks = [stream.zipf_rank(50, alpha=1.0) for _ in range(500)]
        assert all(1 <= r <= 50 for r in ranks)

    def test_zipf_rank_skew(self):
        """Rank 1 should be drawn far more often than rank 50."""
        stream = RngStream(3)
        ranks = [stream.zipf_rank(50, alpha=1.0) for _ in range(5000)]
        assert ranks.count(1) > ranks.count(50) * 3

    def test_zipf_rank_invalid(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_rank(0)

    def test_lognormal_bytes_positive_and_median(self):
        stream = RngStream(5)
        draws = sorted(stream.lognormal_bytes(10_000, 1.0) for _ in range(2001))
        assert all(d >= 1 for d in draws)
        median = draws[len(draws) // 2]
        assert 5_000 < median < 20_000

    def test_lognormal_bytes_invalid_median(self):
        with pytest.raises(ValueError):
            RngStream(1).lognormal_bytes(0, 1.0)

    def test_pareto_bytes_minimum(self):
        stream = RngStream(5)
        assert all(stream.pareto_bytes(1000, 1.5) >= 1000 for _ in range(200))

    def test_pareto_bytes_invalid(self):
        with pytest.raises(ValueError):
            RngStream(1).pareto_bytes(-1, 1.5)
        with pytest.raises(ValueError):
            RngStream(1).pareto_bytes(100, 0)

    def test_subset_probability_extremes(self):
        stream = RngStream(1)
        assert stream.subset([1, 2, 3], 1.0) == [1, 2, 3]
        assert stream.subset([1, 2, 3], 0.0) == []

    def test_exponential_mean(self):
        stream = RngStream(9)
        draws = [stream.exponential(10.0) for _ in range(5000)]
        assert math.isclose(sum(draws) / len(draws), 10.0, rel_tol=0.1)
