"""Tests for text table and series rendering."""

import pytest

from repro.util.tables import TextTable, format_count_pct, render_series


class TestFormatCountPct:
    def test_basic(self):
        assert format_count_pct(576, 1000) == "576 (57.6%)"

    def test_zero_total(self):
        assert format_count_pct(5, 0) == "5 (-)"

    def test_full(self):
        assert format_count_pct(10, 10) == "10 (100.0%)"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["alpha", 1])
        table.add_row(["a-much-longer-name", 2.5])
        output = table.render()
        lines = output.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "a-much-longer-name" in output
        assert "2.500" in output  # floats rendered with 3 decimals

    def test_title(self):
        table = TextTable(["x"], title="Table 1")
        table.add_row([1])
        assert table.render().startswith("Table 1\n")

    def test_row_width_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])


class TestRenderSeries:
    def test_short_series_verbatim(self):
        text = render_series("cdf", [0.0, 0.5, 1.0], [0.1, 0.6, 1.0])
        assert "[n=3]" in text
        assert "(0, 0.1)" in text
        assert "(1, 1)" in text

    def test_long_series_subsampled(self):
        xs = list(range(100))
        ys = [x / 100 for x in xs]
        text = render_series("s", xs, ys, max_points=8)
        assert "[n=100]" in text
        assert text.count("(") <= 8
        assert "(0, 0)" in text
        assert "(99, 0.99)" in text  # endpoints always kept

    def test_empty(self):
        assert "empty" in render_series("s", [], [])

    def test_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1.0], [])
