"""Tests for the columnar FlowFrame view of a monitor's flow log."""

import numpy as np
import pytest

from repro.flowmon.conntrack import FlowKey, Protocol
from repro.flowmon.frame import (
    FLOW_DTYPE,
    SCOPE_CODES,
    day_sums,
    group_sums,
)
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig
from repro.net.addr import IpAddress, Prefix
from repro.traffic.apps import build_service_catalog
from repro.traffic.generate import TrafficGenerator
from repro.traffic.residences import residences_by_name
from repro.traffic.universe import ServiceUniverse
from repro.util.timeutil import DAY, HOUR


@pytest.fixture(scope="module")
def dataset():
    universe = ServiceUniverse(build_service_catalog())
    profile = residences_by_name()["A"]
    return TrafficGenerator(universe, seed=21).generate(profile, num_days=7)


def _simple_monitor() -> FlowMonitor:
    config = RouterConfig(
        name="T",
        lan_v4=Prefix.parse("192.168.0.0/24"),
        lan_v6=Prefix.parse("2001:db8::/56"),
    )
    return FlowMonitor(config)


def _flow(src: str, dst: str, sport: int, start: float, bytes_in: int = 1000):
    from repro.flowmon.conntrack import FlowRecord

    key = FlowKey(Protocol.TCP, IpAddress.parse(src), IpAddress.parse(dst), sport, 443)
    return FlowRecord(
        key=key,
        start_time=start,
        end_time=start + 10.0,
        bytes_out=200,
        bytes_in=bytes_in,
        packets_out=2,
        packets_in=3,
    )


class TestFrameConstruction:
    def test_row_order_matches_records(self, dataset):
        frame = dataset.monitor.frame()
        records = dataset.monitor.records()
        assert len(frame) == len(records)
        starts = np.array([r.start_time for r in records])
        assert np.array_equal(frame.start_time, starts)
        volumes = np.array([r.total_bytes for r in records])
        assert np.array_equal(frame.total_bytes, volumes)
        v6 = np.array([r.key.is_v6 for r in records])
        assert np.array_equal(frame.is_v6, v6)

    def test_scope_split_matches_monitor(self, dataset):
        frame = dataset.monitor.frame()
        for scope in FlowScope:
            sub = frame.select(scope=scope)
            assert len(sub) == len(dataset.monitor.records(scope=scope))

    def test_day_and_hour_columns(self, dataset):
        frame = dataset.monitor.frame()
        assert np.array_equal(frame.day, (frame.start_time // DAY).astype(np.int32))
        assert np.array_equal(frame.hour, (frame.start_time // HOUR).astype(np.int64))

    def test_peers_interned_in_first_appearance_order(self):
        monitor = _simple_monitor()
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1000, 5.0))
        monitor.observe(_flow("192.168.0.2", "100.64.0.7", 1001, 6.0))
        monitor.observe(_flow("192.168.0.3", "100.64.0.9", 1002, 7.0))
        frame = monitor.frame()
        assert [str(p) for p in frame.peers] == ["100.64.0.9", "100.64.0.7"]
        assert frame.peer.tolist() == [0, 1, 0]

    def test_internal_rows_have_no_peer(self, dataset):
        frame = dataset.monitor.frame()
        internal = frame.select(scope=FlowScope.INTERNAL)
        assert (internal.peer == -1).all()

    def test_dtype(self, dataset):
        assert dataset.monitor.frame().data.dtype == FLOW_DTYPE


class TestFrameCaching:
    def test_frame_cached_until_observe(self):
        monitor = _simple_monitor()
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1000, 5.0))
        first = monitor.frame()
        assert monitor.frame() is first
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1001, 6.0))
        second = monitor.frame()
        assert second is not first
        assert len(second) == 2

    def test_records_cached_until_observe(self):
        monitor = _simple_monitor()
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1000, 5.0))
        view = monitor.records(scope=FlowScope.EXTERNAL)
        assert monitor.records(scope=FlowScope.EXTERNAL) is view
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1001, 6.0))
        fresh = monitor.records(scope=FlowScope.EXTERNAL)
        assert fresh is not view
        assert len(fresh) == 2

    def test_dataset_frame_cached_and_attributed(self, dataset):
        frame = dataset.frame()
        assert dataset.frame() is frame
        assert frame.peer_asn is not None
        assert frame.peer_domain is not None
        assert len(frame.peer_asn) == len(frame.peers)

    def test_version_bumps_on_observe(self):
        monitor = _simple_monitor()
        assert monitor.version == 0
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1000, 5.0))
        assert monitor.version == 1


class TestAttribution:
    def test_flow_asn_matches_per_record_lookup(self, dataset):
        frame = dataset.frame()
        monitor = dataset.monitor
        routing = dataset.universe.routing
        external = frame.select(scope=FlowScope.EXTERNAL)
        records = dataset.external_records()
        for i, record in enumerate(records[:300]):
            peer = monitor.external_peer(record)
            expected = routing.origin_of(peer)
            assert external.flow_asn[i] == (expected if expected is not None else -1)

    def test_unattributed_frame_raises(self):
        monitor = _simple_monitor()
        monitor.observe(_flow("192.168.0.2", "100.64.0.9", 1000, 5.0))
        frame = monitor.frame()
        with pytest.raises(ValueError):
            frame.flow_asn
        with pytest.raises(ValueError):
            frame.flow_domain

    def test_with_attribution_idempotent(self, dataset):
        frame = dataset.frame()
        again = frame.with_attribution(
            dataset.universe.routing, dataset.universe.rdns
        )
        assert again is frame

    def test_attributed_frame_with_no_peers(self, dataset):
        """A log with no external flows (zero interned peers) must yield
        all -1 AS/domain columns, not an IndexError."""
        monitor = _simple_monitor()
        monitor.observe(_flow("192.168.0.2", "192.168.0.3", 1000, 5.0))  # internal
        frame = monitor.frame().with_attribution(
            dataset.universe.routing, dataset.universe.rdns
        )
        assert len(frame.peers) == 0
        assert frame.flow_asn.tolist() == [-1]
        assert frame.flow_domain.tolist() == [-1]


class TestSelect:
    def test_select_day(self, dataset):
        frame = dataset.monitor.frame()
        sub = frame.select(day=3)
        assert (sub.day == 3).all()
        assert len(sub) == len(dataset.monitor.records(day=3))

    def test_select_no_filter_returns_self(self, dataset):
        frame = dataset.monitor.frame()
        assert frame.select() is frame

    def test_mask(self, dataset):
        frame = dataset.monitor.frame()
        sub = frame.mask(frame.is_v6)
        assert sub.is_v6.all()
        assert sub.peers is frame.peers


class TestGroupHelpers:
    def test_group_sums_first_appearance_order(self):
        keys = np.array([7, 3, 7, 9, 3, 7])
        values = np.array([1, 10, 100, 1000, 10000, 100000])
        uniq, counts, (sums,) = group_sums(keys, [values])
        assert uniq.tolist() == [7, 3, 9]
        assert counts.tolist() == [3, 2, 1]
        assert sums.tolist() == [100101, 10010, 1000]

    def test_group_sums_empty(self):
        uniq, counts, (sums,) = group_sums(np.array([], dtype=np.int64), [np.array([], dtype=np.int64)])
        assert uniq.size == 0 and counts.size == 0 and sums.size == 0

    def test_group_sums_exact_for_large_ints(self):
        keys = np.array([1, 1])
        values = np.array([2**52 + 1, 2**52 + 1], dtype=np.int64)
        _, _, (sums,) = group_sums(keys, [values])
        assert int(sums[0]) == 2 * (2**52 + 1)

    def test_day_sums(self):
        day = np.array([0, 2, 0], dtype=np.int32)
        (sums,) = day_sums(day, [np.array([5, 7, 11], dtype=np.int64)])
        assert sums.tolist() == [16, 0, 7]

    def test_day_sums_empty_with_minlength(self):
        (sums,) = day_sums(
            np.array([], dtype=np.int32), [np.array([], dtype=np.int64)], minlength=4
        )
        assert sums.tolist() == [0, 0, 0, 0]

    def test_scope_codes_cover_enum(self):
        assert set(SCOPE_CODES) == set(FlowScope)
