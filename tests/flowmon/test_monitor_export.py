"""Tests for the flow monitor and anonymized export."""

import pytest

from repro.flowmon.conntrack import ConntrackTable, FlowKey, FlowRecord, Protocol
from repro.flowmon.export import FlowExporter
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig
from repro.net.addr import IpAddress, Prefix
from repro.util.timeutil import DAY

LAN4 = Prefix.parse("192.168.1.0/24")
LAN6 = Prefix.parse("2001:db8:aaaa::/48")
KEY = b"k" * 32


def make_monitor(with_v6: bool = True) -> FlowMonitor:
    config = RouterConfig(name="A", lan_v4=LAN4, lan_v6=LAN6 if with_v6 else None)
    return FlowMonitor(config=config)


def flow(src: str, dst: str, start=0.0, end=None, out_bytes=100, in_bytes=1000) -> FlowRecord:
    key = FlowKey(
        Protocol.TCP, IpAddress.parse(src), IpAddress.parse(dst), 40000, 443
    )
    return FlowRecord(
        key=key, start_time=start, end_time=end if end is not None else start + 1.0,
        bytes_out=out_bytes, bytes_in=in_bytes, packets_out=1, packets_in=1,
    )


class TestRouterConfig:
    def test_family_validation(self):
        with pytest.raises(ValueError):
            RouterConfig("X", lan_v4=LAN6, lan_v6=None)
        with pytest.raises(ValueError):
            RouterConfig("X", lan_v4=LAN4, lan_v6=LAN4)

    def test_is_local(self):
        config = RouterConfig("A", lan_v4=LAN4, lan_v6=LAN6)
        assert config.is_local(IpAddress.parse("192.168.1.55"))
        assert not config.is_local(IpAddress.parse("8.8.8.8"))
        assert config.is_local(IpAddress.parse("2001:db8:aaaa::7"))
        assert not config.is_local(IpAddress.parse("2001:db8:bbbb::7"))

    def test_no_v6_prefix(self):
        config = RouterConfig("B", lan_v4=LAN4, lan_v6=None)
        assert not config.is_local(IpAddress.parse("2001:db8:aaaa::7"))


class TestFlowMonitor:
    def test_classification(self):
        monitor = make_monitor()
        assert monitor.observe(flow("192.168.1.5", "8.8.8.8")) is FlowScope.EXTERNAL
        assert monitor.observe(flow("192.168.1.5", "192.168.1.9")) is FlowScope.INTERNAL
        assert monitor.observe(flow("1.1.1.1", "8.8.8.8")) is FlowScope.TRANSIT

    def test_inbound_external(self):
        monitor = make_monitor()
        assert monitor.observe(flow("8.8.8.8", "192.168.1.5")) is FlowScope.EXTERNAL

    def test_daily_binning(self):
        monitor = make_monitor()
        monitor.observe(flow("192.168.1.5", "8.8.8.8", start=0.5 * DAY))
        monitor.observe(flow("192.168.1.5", "8.8.8.8", start=2.5 * DAY, end=2.6 * DAY))
        assert monitor.observed_days() == [0, 2]
        assert len(monitor.records(day=0)) == 1
        assert len(monitor.records()) == 2

    def test_scope_filter(self):
        monitor = make_monitor()
        monitor.observe(flow("192.168.1.5", "8.8.8.8"))
        monitor.observe(flow("192.168.1.5", "192.168.1.9"))
        assert len(monitor.records(scope=FlowScope.EXTERNAL)) == 1
        assert len(monitor.records(scope=FlowScope.INTERNAL)) == 1

    def test_attach_to_conntrack(self):
        monitor = make_monitor()
        table = ConntrackTable()
        monitor.attach(table)
        key = FlowKey(
            Protocol.UDP,
            IpAddress.parse("192.168.1.7"),
            IpAddress.parse("8.8.4.4"),
            5353,
            53,
        )
        table.observe_flow(key, 100.0, 101.0, 60, 400)
        assert monitor.records_seen == 1
        assert monitor.records()[0].key == key

    def test_external_peer(self):
        monitor = make_monitor()
        outbound = flow("192.168.1.5", "8.8.8.8")
        inbound = flow("8.8.8.8", "192.168.1.5")
        internal = flow("192.168.1.5", "192.168.1.6")
        assert str(monitor.external_peer(outbound)) == "8.8.8.8"
        assert str(monitor.external_peer(inbound)) == "8.8.8.8"
        assert monitor.external_peer(internal) is None


class TestFlowExporter:
    def test_client_anonymized_server_kept(self):
        monitor = make_monitor()
        record = flow("192.168.1.77", "8.8.8.8")
        monitor.observe(record)
        exporter = FlowExporter(monitor, key=KEY)
        exported = exporter.export_all()[0]
        # Server address intact for attribution.
        assert str(exported.peer) == "8.8.8.8"
        assert str(exported.anonymized_dst) == "8.8.8.8"
        # Client address pseudonymized within its /24.
        assert str(exported.anonymized_src) != "192.168.1.77"
        assert str(exported.anonymized_src).startswith("192.168.1.")

    def test_internal_flow_both_anonymized_no_peer(self):
        monitor = make_monitor()
        monitor.observe(flow("192.168.1.5", "192.168.1.9"))
        exported = FlowExporter(monitor, key=KEY).export_all()[0]
        assert exported.peer is None
        assert exported.scope is FlowScope.INTERNAL
        assert str(exported.anonymized_src).startswith("192.168.1.")
        assert str(exported.anonymized_dst).startswith("192.168.1.")

    def test_v6_client_keeps_prefix(self):
        monitor = make_monitor()
        monitor.observe(flow("2001:db8:aaaa::42", "2001:db8:ffff::1"))
        exported = FlowExporter(monitor, key=KEY).export_all()[0]
        assert exported.is_v6
        assert str(exported.anonymized_src).startswith("2001:db8:aaaa:")

    def test_deterministic_pseudonyms(self):
        monitor = make_monitor()
        monitor.observe(flow("192.168.1.77", "8.8.8.8", start=0.0))
        monitor.observe(flow("192.168.1.77", "9.9.9.9", start=DAY))
        exporter = FlowExporter(monitor, key=KEY)
        day0 = exporter.export_day(0)
        day1 = exporter.export_day(1)
        assert day0[0].anonymized_src == day1[0].anonymized_src

    def test_metadata_preserved(self):
        monitor = make_monitor()
        monitor.observe(flow("192.168.1.5", "8.8.8.8", out_bytes=10, in_bytes=20))
        exported = FlowExporter(monitor, key=KEY).export_all()[0]
        assert exported.bytes_total == 30
        assert exported.residence == "A"
        assert exported.protocol is Protocol.TCP
        assert not exported.is_v6
