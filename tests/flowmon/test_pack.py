"""Columnar flow-log packing: lossless, lazy, and order-preserving."""

import pickle

import numpy as np
import pytest

from repro.flowmon.conntrack import FlowKey, FlowRecord, IcmpInfo, Protocol
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig
from repro.flowmon.pack import (
    LazyDailyLogs,
    is_still_packed,
    pack_daily_logs,
    reduce_monitor,
    unpack_daily_logs,
)
from repro.net.addr import IpAddress, Prefix


def make_monitor(num_days: int = 3, flows_per_day: int = 40) -> FlowMonitor:
    config = RouterConfig(
        name="T",
        lan_v4=Prefix.parse("192.168.1.0/24"),
        lan_v6=Prefix.parse("2001:db8:77::/64"),
    )
    monitor = FlowMonitor(config=config)
    lan4 = IpAddress.parse("192.168.1.10")
    lan6 = IpAddress.parse("2001:db8:77::10")
    for day in range(num_days):
        base = day * 86400.0
        for i in range(flows_per_day):
            v6 = i % 2 == 0
            src = lan6 if v6 else lan4
            dst = (
                IpAddress.v6((0x20010DB8 << 96) | (i % 7))
                if v6
                else IpAddress.v4((198 << 24) | (51 << 16) | (100 << 8) | (i % 7))
            )
            if i % 10 == 9:
                key = FlowKey(
                    protocol=Protocol.ICMP, src=src, dst=dst,
                    icmp=IcmpInfo(8 if v6 else 0, 0, i),
                )
            else:
                key = FlowKey(
                    protocol=Protocol.TCP if i % 3 else Protocol.UDP,
                    src=src, dst=dst, sport=20000 + i, dport=443,
                )
            monitor.observe(FlowRecord(
                key=key,
                start_time=base + i * 10.5,
                end_time=base + i * 10.5 + 2.25,
                bytes_out=100 + i,
                bytes_in=9000 + i,
                packets_out=3,
                packets_in=8,
            ))
    return monitor


class TestPackRoundTrip:
    def test_lossless_and_order_preserving(self):
        monitor = make_monitor()
        packed = pack_daily_logs(monitor.daily_logs)
        rebuilt = unpack_daily_logs(packed)
        assert rebuilt == monitor.daily_logs
        # exact iteration order, day by day, scope by scope
        assert list(rebuilt) == list(monitor.daily_logs)
        for day in monitor.daily_logs:
            assert list(rebuilt[day]) == list(monitor.daily_logs[day])
            for scope in monitor.daily_logs[day]:
                assert rebuilt[day][scope] == monitor.daily_logs[day][scope]

    def test_v6_addresses_above_64_bits_survive(self):
        monitor = make_monitor(num_days=1, flows_per_day=4)
        rebuilt = unpack_daily_logs(pack_daily_logs(monitor.daily_logs))
        originals = {
            r.key.dst for rs in monitor.daily_logs[0].values() for r in rs
        }
        restored = {r.key.dst for rs in rebuilt[0].values() for r in rs}
        assert originals == restored
        assert any(a.value >> 64 for a in restored)  # genuinely 128-bit

    def test_addresses_are_interned_on_unpack(self):
        monitor = make_monitor(num_days=2)
        rebuilt = unpack_daily_logs(pack_daily_logs(monitor.daily_logs))
        seen: dict = {}
        for per_scope in rebuilt.values():
            for records in per_scope.values():
                for record in records:
                    for addr in (record.key.src, record.key.dst):
                        prev = seen.setdefault((addr.family, addr.value), addr)
                        assert prev is addr  # one object per distinct address

    def test_empty_log_packs(self):
        assert unpack_daily_logs(pack_daily_logs({})) == {}


class TestLazyDailyLogs:
    def packed_logs(self):
        monitor = make_monitor(num_days=2, flows_per_day=10)
        return monitor.daily_logs, LazyDailyLogs(pack_daily_logs(monitor.daily_logs))

    def test_materializes_on_access_only(self):
        original, lazy = self.packed_logs()
        assert not lazy.materialized
        assert sorted(lazy) == sorted(original)  # iteration materializes
        assert lazy.materialized
        assert lazy == original

    @pytest.mark.parametrize(
        "touch",
        [
            lambda d: d[0],
            lambda d: len(d),
            lambda d: 0 in d,
            lambda d: d.get(0),
            lambda d: list(d.items()),
            lambda d: d.setdefault(99, {}),
        ],
    )
    def test_every_entry_point_materializes(self, touch):
        _, lazy = self.packed_logs()
        touch(lazy)
        assert lazy.materialized

    def test_plain_pickle_round_trips_as_dict(self):
        original, lazy = self.packed_logs()
        clone = pickle.loads(pickle.dumps(lazy))
        assert type(clone) is dict
        assert clone == original


class TestMonitorReduction:
    def test_reduce_restore_round_trip_is_lazy(self):
        monitor = make_monitor()
        frame = monitor.frame()  # cache the columnar view
        restore, args = reduce_monitor(monitor)
        clone = restore(*args)
        assert is_still_packed(clone)
        # The analysis path needs no records: the frame survived.
        np.testing.assert_array_equal(clone.frame().data, frame.data)
        assert is_still_packed(clone)  # frame() did not materialize
        assert clone.records_seen == monitor.records_seen
        assert clone.version == monitor.version
        # Touching records materializes and matches exactly.
        assert clone.records() == monitor.records()
        assert not is_still_packed(clone)
        for scope in FlowScope:
            assert clone.records(scope=scope) == monitor.records(scope=scope)

    def test_store_codec_applies_the_reduction(self):
        from repro.store.serialize import dump_value, load_value

        monitor = make_monitor()
        monitor.frame()
        clone = load_value(dump_value(monitor))
        assert is_still_packed(clone)
        assert clone.records() == monitor.records()
