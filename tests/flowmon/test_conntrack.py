"""Tests for the conntrack flow table."""

import pytest

from repro.flowmon.conntrack import (
    ConntrackEvent,
    ConntrackEventType,
    ConntrackTable,
    FlowKey,
    IcmpInfo,
    Protocol,
)
from repro.net.addr import IpAddress

SRC = IpAddress.parse("192.168.1.10")
DST = IpAddress.parse("203.0.113.5")
SRC6 = IpAddress.parse("2001:db8:1::10")
DST6 = IpAddress.parse("2001:db8:2::5")


def tcp_key(sport=40000, dport=443):
    return FlowKey(Protocol.TCP, SRC, DST, sport, dport)


class TestFlowKey:
    def test_mixed_families_rejected(self):
        with pytest.raises(ValueError):
            FlowKey(Protocol.TCP, SRC, DST6, 1, 2)

    def test_icmp_requires_info(self):
        with pytest.raises(ValueError):
            FlowKey(Protocol.ICMP, SRC, DST)
        key = FlowKey(Protocol.ICMP, SRC, DST, icmp=IcmpInfo(8, 0, 1234))
        assert key.icmp.icmp_type == 8

    def test_icmp_rejects_ports(self):
        with pytest.raises(ValueError):
            FlowKey(Protocol.ICMP, SRC, DST, sport=1, icmp=IcmpInfo(8, 0, 1))

    def test_tcp_rejects_icmp_info(self):
        with pytest.raises(ValueError):
            FlowKey(Protocol.TCP, SRC, DST, 1, 2, icmp=IcmpInfo(8, 0, 1))

    def test_port_range(self):
        with pytest.raises(ValueError):
            FlowKey(Protocol.UDP, SRC, DST, 70000, 53)

    def test_icmp_info_validation(self):
        with pytest.raises(ValueError):
            IcmpInfo(256, 0, 0)
        with pytest.raises(ValueError):
            IcmpInfo(8, 0, 70000)

    def test_family_flags(self):
        assert not tcp_key().is_v6
        assert FlowKey(Protocol.TCP, SRC6, DST6, 1, 2).is_v6


class TestConntrackTable:
    def test_lifecycle(self):
        table = ConntrackTable()
        key = tcp_key()
        table.new(key, 100.0)
        assert table.live_count == 1
        table.account(key, bytes_out=500, bytes_in=15000, packets_out=5, packets_in=12)
        record = table.destroy(key, 160.0)
        assert table.live_count == 0
        assert record.total_bytes == 15500
        assert record.duration == 60.0
        assert record.total_packets == 17

    def test_duplicate_new_rejected(self):
        table = ConntrackTable()
        table.new(tcp_key(), 0.0)
        with pytest.raises(KeyError):
            table.new(tcp_key(), 1.0)

    def test_account_unknown_flow(self):
        with pytest.raises(KeyError):
            ConntrackTable().account(tcp_key(), bytes_out=1)

    def test_destroy_unknown_flow(self):
        with pytest.raises(KeyError):
            ConntrackTable().destroy(tcp_key(), 0.0)

    def test_destroy_before_start_rejected(self):
        table = ConntrackTable()
        table.new(tcp_key(), 100.0)
        with pytest.raises(ValueError):
            table.destroy(tcp_key(), 50.0)

    def test_negative_account_rejected(self):
        table = ConntrackTable()
        table.new(tcp_key(), 0.0)
        with pytest.raises(ValueError):
            table.account(tcp_key(), bytes_out=-5)

    def test_events_fired_in_order(self):
        table = ConntrackTable()
        events: list[ConntrackEvent] = []
        table.subscribe(events.append)
        key = tcp_key()
        table.new(key, 10.0)
        table.destroy(key, 20.0)
        assert [e.event_type for e in events] == [
            ConntrackEventType.NEW,
            ConntrackEventType.DESTROY,
        ]
        assert events[0].record is None
        assert events[1].record is not None
        assert events[1].record.start_time == 10.0

    def test_observe_flow_shortcut(self):
        table = ConntrackTable()
        record = table.observe_flow(tcp_key(), 0.0, 5.0, bytes_out=2800, bytes_in=0)
        assert record.packets_out == 2
        assert record.packets_in == 0
        assert table.flows_created == table.flows_destroyed == 1

    def test_counters(self):
        table = ConntrackTable()
        for port in range(5):
            table.observe_flow(tcp_key(sport=50000 + port), 0.0, 1.0, 10, 10)
        assert table.flows_created == 5
        assert table.live_count == 0

    def test_concurrent_flows_independent(self):
        table = ConntrackTable()
        key_a, key_b = tcp_key(sport=1000), tcp_key(sport=2000)
        table.new(key_a, 0.0)
        table.new(key_b, 1.0)
        table.account(key_a, bytes_out=100)
        table.account(key_b, bytes_out=999)
        assert table.destroy(key_a, 2.0).bytes_out == 100
        assert table.destroy(key_b, 2.0).bytes_out == 999
