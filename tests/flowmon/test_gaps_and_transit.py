"""Flow monitor edge cases: observation gaps, transit traffic, ICMP export."""

import pytest

from repro.core import daily_fractions
from repro.flowmon.conntrack import ConntrackTable, FlowKey, IcmpInfo, Protocol
from repro.flowmon.export import FlowExporter
from repro.flowmon.monitor import FlowMonitor, FlowScope, RouterConfig
from repro.net.addr import IpAddress, Prefix
from repro.traffic.apps import build_service_catalog
from repro.traffic.generate import ResidenceDataset
from repro.traffic.residences import residences_by_name
from repro.traffic.universe import ServiceUniverse
from repro.util.timeutil import DAY

LAN4 = Prefix.parse("192.168.1.0/24")
LAN6 = Prefix.parse("2001:db8:aaaa::/48")


def make_monitor() -> FlowMonitor:
    return FlowMonitor(RouterConfig(name="T", lan_v4=LAN4, lan_v6=LAN6))


def observe(monitor: FlowMonitor, src: str, dst: str, day: int, v6: bool = False):
    table = ConntrackTable()
    monitor.attach(table)
    key = FlowKey(
        Protocol.TCP, IpAddress.parse(src), IpAddress.parse(dst), 40000, 443
    )
    table.observe_flow(key, day * DAY + 100.0, day * DAY + 200.0, 100, 1000)


class TestObservationGaps:
    def test_missing_days_skipped_in_daily_series(self):
        """A router outage (no flows for some days) must not poison the
        daily-fraction series -- the analysis reports observed days only."""
        monitor = make_monitor()
        observe(monitor, "192.168.1.5", "8.8.8.8", day=0)
        observe(monitor, "192.168.1.5", "8.8.8.8", day=5)  # days 1-4 silent
        universe = ServiceUniverse(build_service_catalog())
        dataset = ResidenceDataset(
            profile=residences_by_name()["A"],
            monitor=monitor,
            universe=universe,
            num_days=6,
        )
        fractions = daily_fractions(dataset)
        assert len(fractions) == 2  # only the two observed days

    def test_observed_days_sorted(self):
        monitor = make_monitor()
        observe(monitor, "192.168.1.5", "8.8.8.8", day=7)
        observe(monitor, "192.168.1.5", "8.8.8.8", day=2)
        assert monitor.observed_days() == [2, 7]


class TestTransitTraffic:
    def test_transit_isolated_from_analyses(self):
        """Flows with no local endpoint are logged as TRANSIT and never
        pollute the external/internal splits."""
        monitor = make_monitor()
        observe(monitor, "1.1.1.1", "8.8.8.8", day=0)
        assert len(monitor.records(scope=FlowScope.TRANSIT)) == 1
        assert not monitor.records(scope=FlowScope.EXTERNAL)
        assert not monitor.records(scope=FlowScope.INTERNAL)


class TestIcmpExport:
    def test_icmp_flow_exports_cleanly(self):
        monitor = make_monitor()
        table = ConntrackTable()
        monitor.attach(table)
        key = FlowKey(
            Protocol.ICMP,
            IpAddress.parse("192.168.1.9"),
            IpAddress.parse("9.9.9.9"),
            icmp=IcmpInfo(icmp_type=8, icmp_code=0, icmp_id=77),
        )
        table.observe_flow(key, 10.0, 12.0, 128, 128, packets_out=2, packets_in=2)
        exporter = FlowExporter(monitor, key=b"icmp-export-test-key-0123456789")
        exported = exporter.export_all()
        assert len(exported) == 1
        record = exported[0]
        assert record.protocol is Protocol.ICMP
        assert record.bytes_total == 256
        assert str(record.peer) == "9.9.9.9"

    def test_exporter_requires_real_key(self):
        monitor = make_monitor()
        with pytest.raises(ValueError):
            FlowExporter(monitor, key=b"short")
