"""Tests for the cloud provider catalog and IPv6 policies."""

import pytest

from repro.cloud.providers import (
    CloudProvider,
    CloudService,
    Ipv6Policy,
    build_provider_catalog,
    providers_by_name,
)
from repro.util.rng import RngStream


def make_service(policy: Ipv6Policy) -> CloudService:
    return CloudService(
        name="svc", cname_suffix="svc.x.example", policy=policy,
        weight=1.0, v4_org_id="org", v6_org_id="org",
    )


class TestCloudService:
    def test_always_on_ignores_inclination(self):
        service = make_service(Ipv6Policy.ALWAYS_ON)
        rng = RngStream(1)
        assert all(service.tenant_enables_ipv6(0.0, rng) for _ in range(50))

    def test_none_never_enables(self):
        service = make_service(Ipv6Policy.NONE)
        rng = RngStream(1)
        assert not any(service.tenant_enables_ipv6(1.0, rng) for _ in range(50))

    def test_default_on_beats_opt_in(self):
        """Same tenants, very different outcomes by policy (Table 2)."""
        rng = RngStream(2)
        inclinations = [rng.random() for _ in range(800)]
        default_on = make_service(Ipv6Policy.DEFAULT_ON)
        opt_in = make_service(Ipv6Policy.OPT_IN)
        code_change = make_service(Ipv6Policy.OPT_IN_CODE_CHANGE)
        r_default = sum(default_on.tenant_enables_ipv6(i, rng) for i in inclinations)
        r_opt = sum(opt_in.tenant_enables_ipv6(i, rng) for i in inclinations)
        r_code = sum(code_change.tenant_enables_ipv6(i, rng) for i in inclinations)
        assert r_default > 2 * r_opt > 0
        assert r_code < r_opt / 3
        assert r_code < 0.05 * len(inclinations)

    def test_inclination_bounds(self):
        service = make_service(Ipv6Policy.OPT_IN)
        with pytest.raises(ValueError):
            service.tenant_enables_ipv6(1.5, RngStream(1))

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            CloudService("s", "s.example", Ipv6Policy.NONE, 0.0, "o", "o")


class TestCatalog:
    def test_paper_providers_present(self):
        names = {p.name for p in build_provider_catalog()}
        for expected in (
            "Cloudflare", "Amazon", "Google", "Akamai", "Fastly", "Microsoft",
            "Bunnyway", "Datacamp", "OVH", "DigitalOcean", "Hetzner",
        ):
            assert expected in names

    def test_validation_catches_unknown_org(self):
        with pytest.raises(ValueError):
            CloudProvider(
                name="X", org_ids=("a",), org_names=("A",), asns=(1,),
                services=(CloudService("s", "s.x", Ipv6Policy.NONE, 1.0, "BAD", "a"),),
                market_weight=1.0,
            )

    def test_bunnyway_split_brand(self):
        """bunny.net: AAAA from Bunnyway's org, A from the Datacamp one."""
        bunny = providers_by_name()["Bunnyway"]
        service = bunny.services[0]
        assert service.v4_org_id != service.v6_org_id
        assert service.v6_org_id == "bunnyway"

    def test_akamai_legacy_split(self):
        akamai = providers_by_name()["Akamai"]
        legacy = next(s for s in akamai.services if "Legacy" in s.name)
        assert legacy.v4_org_id == "akamai-tech"
        assert legacy.v6_org_id == "akamai-intl"
        modern = next(s for s in akamai.services if s.name == "Akamai CDN")
        assert modern.v4_org_id == modern.v6_org_id == "akamai-intl"

    def test_azure_front_door_always_on(self):
        microsoft = providers_by_name()["Microsoft"]
        front_door = next(s for s in microsoft.services if "Front Door" in s.name)
        assert front_door.policy is Ipv6Policy.ALWAYS_ON

    def test_s3_is_code_change(self):
        amazon = providers_by_name()["Amazon"]
        s3 = next(s for s in amazon.services if s.name == "Amazon S3")
        assert s3.policy is Ipv6Policy.OPT_IN_CODE_CHANGE

    def test_unique_cname_suffixes(self):
        suffixes = [
            s.cname_suffix for p in build_provider_catalog() for s in p.services
        ]
        assert len(suffixes) == len(set(suffixes))

    def test_asn_org_mapping_consistent(self):
        """An ASN may appear under two providers only for the documented
        shared-organization case (Bunnyway fronting on Datacamp); it must
        always map to the same organization."""
        asn_to_org: dict[int, str] = {}
        for provider in build_provider_catalog():
            for org_id, asn in zip(provider.org_ids, provider.asns):
                if asn in asn_to_org:
                    assert asn_to_org[asn] == org_id, f"AS{asn} org conflict"
                asn_to_org[asn] = org_id
        # The Datacamp AS is the one shared (bunny.net's A records).
        shared = [a for p in build_provider_catalog() for a in p.asns]
        assert len(shared) - len(set(shared)) == 1

    def test_asn_of_org(self):
        cloudflare = providers_by_name()["Cloudflare"]
        assert cloudflare.asn_of_org("cloudflare") == 13335

    def test_pick_service_weighted(self):
        amazon = providers_by_name()["Amazon"]
        rng = RngStream(3)
        picks = [amazon.pick_service(rng).name for _ in range(300)]
        # EC2 has the largest weight; it must dominate.
        assert picks.count("Amazon EC2") > picks.count("Amazon S3")
