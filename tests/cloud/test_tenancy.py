"""Tests for tenant placement across clouds."""

import pytest

from repro.cloud.providers import build_provider_catalog, providers_by_name
from repro.cloud.tenancy import Tenant, TenantPlanner
from repro.util.rng import RngStream


@pytest.fixture
def planner() -> TenantPlanner:
    return TenantPlanner(build_provider_catalog(), RngStream(1, "tenancy"))


class TestTenant:
    def test_inclination_bounds(self):
        with pytest.raises(ValueError):
            Tenant(etld1="x.com", inclination=1.5)

    def test_fraction_requires_presence(self, planner):
        tenant = planner.place_tenant("x.com", 1, 0.5)
        provider = tenant.placements[0].provider_name
        assert 0.0 <= tenant.ipv6_full_fraction_on(provider) <= 1.0
        with pytest.raises(ValueError):
            tenant.ipv6_full_fraction_on("NoSuchCloud")


class TestTenantPlanner:
    def test_empty_providers_rejected(self):
        with pytest.raises(ValueError):
            TenantPlanner([], RngStream(1))

    def test_subdomain_count(self, planner):
        tenant = planner.place_tenant("site.com", 4, 0.5)
        assert len(tenant.placements) == 4
        assert tenant.placements[0].fqdn == "www.site.com"

    def test_subdomain_count_capped(self, planner):
        tenant = planner.place_tenant("site.com", 99, 0.5)
        assert len(tenant.placements) <= 12

    def test_invalid_subdomain_count(self, planner):
        with pytest.raises(ValueError):
            planner.place_tenant("site.com", 0, 0.5)

    def test_forced_aaaa(self, planner):
        on = planner.place_tenant("a.com", 5, 0.0, forced_aaaa=True)
        off = planner.place_tenant("b.com", 5, 1.0, forced_aaaa=False)
        assert all(p.has_aaaa for p in on.placements)
        assert not any(p.has_aaaa for p in off.placements)

    def test_same_service_placements_share_fate(self, planner):
        """One enablement decision per (tenant, service): all placements
        of a tenant on the same service have the same AAAA outcome."""
        for i in range(50):
            tenant = planner.place_tenant(f"s{i}.com", 8, 0.5)
            by_service: dict[str, set[bool]] = {}
            for placement in tenant.placements:
                by_service.setdefault(placement.service.cname_suffix, set()).add(
                    placement.has_aaaa
                )
            for outcomes in by_service.values():
                assert len(outcomes) == 1

    def test_most_primary_subdomains_share_www_service(self, planner):
        """Subdomains that stay on the primary provider reuse the www
        service (one CDN config fronts the site), so the bulk of a
        tenant's same-provider placements share the main page's fate."""
        same_service = total = 0
        for i in range(100):
            tenant = planner.place_tenant(f"w{i}.com", 6, 0.5)
            www = tenant.main_placement
            for placement in tenant.placements:
                if placement.provider_name != www.provider_name:
                    continue
                total += 1
                if placement.service.name == www.service.name:
                    same_service += 1
        assert same_service / total > 0.9

    def test_multicloud_population_emerges(self, planner):
        tenants = [planner.place_tenant(f"m{i}.com", 6, 0.5) for i in range(300)]
        multicloud = [t for t in tenants if t.is_multicloud]
        assert 0.2 < len(multicloud) / len(tenants) < 0.95

    def test_policy_drives_shared_tenant_differences(self):
        """For multi-cloud tenants, an always-on provider must beat an
        opt-in provider on IPv6-fullness (Figure 12's mechanism)."""
        providers = providers_by_name()
        subset = [providers["Microsoft"], providers["Fastly"]]
        planner = TenantPlanner(subset, RngStream(5, "pair"))
        wins_ms, wins_fastly = 0, 0
        for i in range(400):
            tenant = planner.place_tenant(f"t{i}.com", 8, 0.4)
            names = tenant.provider_names
            if len(names) < 2:
                continue
            ms = tenant.ipv6_full_fraction_on("Microsoft")
            fa = tenant.ipv6_full_fraction_on("Fastly")
            if ms > fa:
                wins_ms += 1
            elif fa > ms:
                wins_fastly += 1
        assert wins_ms > wins_fastly * 1.5

    def test_cdn_bias_validation(self, planner):
        with pytest.raises(ValueError):
            planner.pick_primary(cdn_bias=2.0)

    def test_cdn_bias_shifts_mix(self):
        providers = build_provider_catalog()
        rng = RngStream(7, "bias")
        planner = TenantPlanner(providers, rng)
        unbiased = sum(
            1 for _ in range(500) if planner.pick_primary(0.0).name == "Cloudflare"
        )
        biased = sum(
            1 for _ in range(500) if planner.pick_primary(1.0).name == "Cloudflare"
        )
        assert biased > unbiased
