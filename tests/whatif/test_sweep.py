"""The sweep runner: grid fan-out, cache reuse at scale, delta shapes.

Includes the acceptance scenario: a 20-scenario sweep that rebuilds
zero traffic/census layers (proven by ``BUILD_COUNTS`` deltas) and
whose per-country deltas differ by intervention type -- NAT64 moves
availability but not readiness, ``dualstack`` moves readiness and
usage.
"""

import numpy as np
import pytest

from repro.api import BUILD_COUNTS, Study, StudyConfig
from repro.whatif import DeltaFrame, run_sweep, sweep_grid
from repro.whatif.sweep import DELTA_DTYPE

SMALL = StudyConfig(
    days=5, sites=110, seed=11, probe_targets=50, probe_interval_days=2,
)

#: Twenty observatory-layer scenarios: every one forks the same census
#: and traffic, none may rebuild either.
TWENTY = tuple(
    [f"block:CN@{rate / 10:g}" for rate in range(1, 10)]
    + [f"block:US@{rate / 10:g}" for rate in range(1, 7)]
    + ["nat64:US", "nat64:DE", "nat64:FR", "accelerate:2", "accelerate:4"]
)


@pytest.fixture(scope="module")
def baseline():
    study = Study(SMALL)
    study.traffic, study.census, study.observatory
    return study


class TestTwentyScenarioSweep:
    def test_reuses_baseline_census_and_traffic(self, baseline):
        assert len(TWENTY) == 20
        before = BUILD_COUNTS.copy()
        sweep = run_sweep(baseline, TWENTY, parallel=False)
        for layer in ("traffic", "census", "whatif:traffic", "whatif:census"):
            assert BUILD_COUNTS[layer] == before.get(layer, 0), layer
        # every scenario rebuilt exactly its own observatory (first run
        # only; scenarios cached by other tests don't rebuild)
        assert sweep.num_scenarios == 20
        assert len(sweep.frame) == 20 * len(sweep.frame.countries)

    def test_observatory_only_deltas_leave_readiness_and_usage(self, baseline):
        sweep = run_sweep(baseline, TWENTY, parallel=False)
        assert np.all(sweep.frame.d_readiness == 0.0)
        assert np.all(sweep.frame.d_usage == 0.0)
        assert np.any(sweep.frame.d_availability != 0.0)


class TestDeltasDifferByInterventionType:
    @pytest.fixture(scope="class")
    def sweep(self, baseline):
        return run_sweep(
            baseline,
            ["nat64:US", "dualstack:Amazon", "ispv6", "hetimer:300"],
            parallel=False,
        )

    def test_nat64_moves_availability_not_readiness(self, sweep):
        view = sweep.frame.select(scenario="nat64:US")
        us = view.select(country="US")
        assert us.d_availability[0] > 0.05
        assert np.all(view.d_readiness == 0.0)
        assert np.all(view.d_usage == 0.0)
        # and only in the NAT64 country
        others = view.data[view.country != view.countries.index("US")]
        assert np.all(others["d_availability"] == 0.0)

    def test_dualstack_moves_readiness_and_usage(self, sweep, baseline):
        view = sweep.frame.select(scenario="dualstack:Amazon")
        assert view.d_readiness[0] > 0.0
        # Usage moves -- the overlay is a re-rolled world, so at this
        # tiny scale the *sign* of the global fraction is noisy, but the
        # mechanism is deterministic: the provider's whole server fleet
        # is dual-stack in the overlay universe.
        assert view.d_usage[0] != 0.0
        from repro.whatif import OverlayStudy

        overlay = OverlayStudy(baseline, "dualstack:Amazon")
        universe = overlay.traffic.universe
        amazon = [s for s in universe.catalog if "amazon" in s.name.lower()]
        assert amazon
        for service in amazon:
            assert service.ipv6_support == 1.0
            assert all(server.dual_stack for server in universe.servers_of(service))

    def test_ispv6_moves_usage_only(self, sweep):
        view = sweep.frame.select(scenario="ispv6")
        assert view.d_usage[0] > 0.05
        assert np.all(view.d_availability == 0.0)
        assert np.all(view.d_readiness == 0.0)

    def test_hetimer_moves_usage_only(self, sweep):
        view = sweep.frame.select(scenario="hetimer:300")
        assert view.d_usage[0] > 0.0
        assert np.all(view.d_availability == 0.0)
        assert np.all(view.d_readiness == 0.0)

    def test_baseline_signals_recorded(self, sweep):
        assert sweep.baseline.countries == sweep.frame.countries
        assert 0.0 <= sweep.baseline.readiness <= 1.0
        assert 0.0 <= sweep.baseline.usage <= 1.0
        assert np.allclose(sweep.frame.data["base_usage"], sweep.baseline.usage)


class TestParallelSweep:
    def test_parallel_equals_sequential_bit_identical(self, baseline):
        grid = ["nat64:US", "block:CN@0.7", "accelerate:3"]
        sequential = run_sweep(baseline, grid, parallel=False)
        parallel = run_sweep(baseline, grid, parallel=2)
        assert parallel.frame.scenarios == sequential.frame.scenarios
        assert parallel.frame.countries == sequential.frame.countries
        assert parallel.frame.data.tobytes() == sequential.frame.data.tobytes()


class TestDeltaFrame:
    def test_layout_and_selection(self, baseline):
        sweep = run_sweep(baseline, ["nat64:US", "nat64:DE"], parallel=False)
        frame = sweep.frame
        assert frame.data.dtype == DELTA_DTYPE
        assert len(frame) == 2 * len(frame.countries)
        one = frame.select(scenario="nat64:DE", country="DE")
        assert len(one) == 1
        assert one.d_availability[0] > 0.0

    def test_empty_assemble(self):
        frame = DeltaFrame.assemble((), (), [])
        assert len(frame) == 0

    def test_empty_grid_rejected(self, baseline):
        with pytest.raises(ValueError):
            run_sweep(baseline, [])

    def test_prebuilt_baseline_rejected(self):
        from repro.datasets import build_residence_study

        traffic = build_residence_study(num_days=3, seed=9005, residences=("A",))
        prebuilt = Study.from_prebuilt(traffic=traffic)
        with pytest.raises(ValueError, match="prebuilt"):
            run_sweep(prebuilt, ["nat64:DE"])
        with pytest.raises(ValueError, match="prebuilt"):
            prebuilt.whatif


class TestSweepGrid:
    def test_singles_plus_pairs(self):
        grid = sweep_grid(["nat64:DE", "accelerate:2", "ispv6"])
        specs = [scenario.spec() for scenario in grid]
        assert specs[:3] == ["nat64:DE", "accelerate:2", "ispv6"]
        assert "nat64:DE+accelerate:2" in specs
        assert "nat64:DE+ispv6" in specs
        assert "accelerate:2+ispv6" in specs
        assert len(specs) == 6

    def test_no_pairs(self):
        grid = sweep_grid(["nat64:DE", "ispv6"], pairs=False)
        assert [scenario.spec() for scenario in grid] == ["nat64:DE", "ispv6"]
