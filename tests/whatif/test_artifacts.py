"""What-if artifacts and CLI surface (plus the suggestion satellite)."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.api import Study, StudyConfig, registry

SMALL = StudyConfig(
    days=5, sites=110, seed=11, probe_targets=50, probe_interval_days=2,
    whatif_scenarios=("nat64:US", "ispv6:C"),
)

WHATIF_ARTIFACTS = ("whatif", "whatif_deltas", "whatif_ranking", "whatif_sweep")


@pytest.fixture(scope="module")
def study():
    return Study(SMALL)


class TestRegistry:
    def test_whatif_artifacts_registered(self):
        names = registry.names()
        for name in WHATIF_ARTIFACTS:
            assert name in names
            assert registry.get(name).needs == frozenset({"whatif"})

    def test_unknown_artifact_suggests_close_match(self):
        with pytest.raises(KeyError, match="did you mean 'contrast'"):
            registry.get("contrst")
        with pytest.raises(KeyError, match="whatif"):
            registry.get("whatifs")

    def test_unknown_artifact_without_match_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            registry.get("zzzzzzzzzz")


class TestArtifacts:
    @pytest.mark.parametrize("name", WHATIF_ARTIFACTS)
    def test_renders_text_and_json(self, study, name):
        result = study.artifact(name)
        assert result.name == name
        assert result.rows
        text = result.to_text()
        assert "What-if" in text
        document = json.loads(result.to_json())
        assert document["rows"]

    def test_deltas_cover_scenarios_times_countries(self, study):
        result = study.artifact("whatif_deltas")
        countries = len(study.whatif.frame.countries)
        assert len(result.rows) == 2 * countries
        by_scenario = {row["scenario"] for row in result.rows}
        assert by_scenario == {"nat64:US", "ispv6:C"}

    def test_ranking_names_the_right_movers(self, study):
        rows = {row["country"]: row for row in study.artifact("whatif_ranking").rows}
        assert rows["US"]["availability_scenario"] == "nat64:US"
        assert rows["US"]["availability_delta"] > 0.0
        assert rows["US"]["usage_scenario"] == "ispv6:C"

    def test_whatif_layer_cached_once(self, study):
        from repro.api import BUILD_COUNTS

        study.whatif
        before = BUILD_COUNTS.copy()
        Study(SMALL).whatif
        assert BUILD_COUNTS["whatif"] == before["whatif"]


class TestCli:
    def test_intervention_flags_flow_into_config(self, capsys):
        code = main([
            "whatif_sweep", "--days", "5", "--sites", "110", "--seed", "11",
            "--probe-targets", "50", "--probe-interval-days", "2",
            "--intervention", "nat64:US", "--intervention", "ispv6:C",
            "--format", "json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["whatif_scenarios"] == ["nat64:US", "ispv6:C"]
        rows = document["artifacts"]["whatif_sweep"]["rows"]
        assert [row["scenario"] for row in rows] == ["nat64:US", "ispv6:C"]

    def test_sweep_flag_expands_combinations(self):
        args = build_parser().parse_args(
            ["whatif", "--intervention", "nat64:DE", "--intervention",
             "accelerate:2", "--sweep"]
        )
        assert args.sweep and args.intervention == ["nat64:DE", "accelerate:2"]
        # the expansion itself is sweep_grid's (tested in test_sweep); here
        # just check the CLI wires it through without error
        from repro.whatif.sweep import sweep_grid

        specs = [s.spec() for s in sweep_grid(args.intervention)]
        assert "nat64:DE+accelerate:2" in specs

    def test_bad_intervention_rejected(self):
        with pytest.raises(SystemExit):
            main(["whatif", "--intervention", "teleport:DE"])

    def test_sweep_without_intervention_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["whatif", "--sweep"])
        assert "--intervention" in capsys.readouterr().err

    def test_unknown_artifact_cli_suggests(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["contrst"])
        assert "did you mean 'contrast'" in capsys.readouterr().err

    def test_meta_commands_suggested_too(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lst"])
        assert "did you mean 'list'" in capsys.readouterr().err
