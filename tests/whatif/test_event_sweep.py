"""Sweep-by-events: ranking semantics and the cache-reuse contract."""

import pytest

from repro.api import BUILD_COUNTS, Study, StudyConfig, clear_caches
from repro.whatif.events import run_event_sweep
from repro.whatif.sweep import sweep_grid

CONFIG = StudyConfig(days=3, sites=80, probe_targets=40, parallel=False)

#: Observatory-only levers: a 20+ scenario grid whose overlays rebuild
#: nothing but the vantage layer (and their own sentinel scans).
BASES = (
    "nat64:DE",
    "nat64:FR",
    "nat64:US",
    "nat64:JP",
    "block:BR@0.6",
    "block:CN@0.5",
)


@pytest.fixture(autouse=True)
def _cold():
    clear_caches()
    yield
    clear_caches()


def test_twenty_scenario_sweep_rebuilds_zero_baseline_layers():
    study = Study(CONFIG)
    study.sentinel  # baseline universes + feed, built once
    specs = tuple(scenario.spec() for scenario in sweep_grid(BASES))
    assert len(specs) >= 20

    before = BUILD_COUNTS.copy()
    sweep = run_event_sweep(study, specs)

    # The acceptance contract: baseline layers never rebuild.
    for layer in ("traffic", "census", "cloud", "observatory", "sentinel"):
        assert BUILD_COUNTS[layer] == before[layer], layer
    # No scenario here perturbs traffic or census.
    assert BUILD_COUNTS["whatif:traffic"] == before["whatif:traffic"]
    assert BUILD_COUNTS["whatif:census"] == before["whatif:census"]
    # Each overlay builds exactly its own observatory and sentinel scan.
    assert (
        BUILD_COUNTS["whatif:observatory"] - before["whatif:observatory"]
        == len(specs)
    )
    assert (
        BUILD_COUNTS["whatif:sentinel"] - before["whatif:sentinel"]
        == len(specs)
    )

    # Ranked by triggered-event count, spec as the tiebreaker.
    assert {entry.scenario for entry in sweep.scenarios} == set(specs)
    totals = [entry.events_total for entry in sweep.scenarios]
    assert totals == sorted(totals, reverse=True)

    # A second sweep over the same grid is pure cache hits.
    again = BUILD_COUNTS.copy()
    rerun = run_event_sweep(study, specs)
    assert BUILD_COUNTS == again
    assert rerun == sweep


def test_default_scenarios_come_from_the_whatif_grid():
    scoped = CONFIG.replace(whatif_scenarios=("nat64:DE",))
    study = Study(scoped)
    sweep = run_event_sweep(study)
    assert [entry.scenario for entry in sweep.scenarios] == ["nat64:DE"]
    [entry] = sweep.scenarios
    assert entry.layers == ("observatory",)
    assert dict(entry.by_severity).keys() == {"watch", "elevated", "critical"}
    assert entry.events_total == sum(count for _, count in entry.by_severity)


def test_event_ranking_artifact_renders_the_sweep():
    scoped = CONFIG.replace(whatif_scenarios=("nat64:DE", "block:US@0.6"))
    result = Study(scoped).artifact("whatif_event_ranking")
    assert len(result.rows) == 2
    assert [row["rank"] for row in result.rows] == [1, 2]
    counts = [row["events_total"] for row in result.rows]
    assert counts == sorted(counts, reverse=True)
    assert "baseline feed" in result.to_text()


def test_prebuilt_studies_are_rejected():
    from repro.datasets.scenarios import build_residence_study

    traffic = build_residence_study(num_days=3, seed=9005, residences=("A",))
    study = Study.from_prebuilt(traffic=traffic)
    with pytest.raises(ValueError, match="config-cached baseline"):
        run_event_sweep(study, ("nat64:DE",))
