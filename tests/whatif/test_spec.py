"""Intervention specs: parsing, round-trips, validation, layers."""

import pytest

from repro.whatif.spec import (
    INTERVENTION_TYPES,
    AcceleratedAdoption,
    DeployNAT64,
    DualStackProvider,
    EnableISPv6,
    HappyEyeballsTimerChange,
    PolicyBlockCountry,
    Scenario,
    as_scenario,
    default_sweep_grid,
    parse_intervention,
    parse_scenario,
)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ispv6", EnableISPv6()),
            ("ispv6:C,E", EnableISPv6(residences=("C", "E"))),
            ("dualstack:Amazon", DualStackProvider(provider="Amazon")),
            ("nat64:DE", DeployNAT64(country="DE")),
            ("block:CN", PolicyBlockCountry(country="CN", block_rate=1.0)),
            ("block:CN@0.6", PolicyBlockCountry(country="CN", block_rate=0.6)),
            ("accelerate:2.5", AcceleratedAdoption(multiplier=2.5)),
            ("hetimer:300", HappyEyeballsTimerChange(resolution_delay_ms=300.0)),
            (
                "hetimer:300,100",
                HappyEyeballsTimerChange(
                    resolution_delay_ms=300.0, attempt_delay_ms=100.0
                ),
            ),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_intervention(text) == expected

    def test_every_kind_round_trips(self):
        for scenario in default_sweep_grid():
            assert parse_scenario(scenario.spec()) == scenario
        assert set(INTERVENTION_TYPES) == {
            "ispv6", "dualstack", "nat64", "block", "accelerate", "hetimer"
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown intervention kind"):
            parse_intervention("teleport:DE")

    def test_bad_numeric_arg_rejected(self):
        with pytest.raises(ValueError, match="bad intervention spec"):
            parse_intervention("accelerate:soon")

    def test_composed_scenario(self):
        scenario = parse_scenario("nat64:DE+accelerate:2")
        assert scenario.spec() == "nat64:DE+accelerate:2"
        assert scenario.layers() == frozenset({"observatory"})
        assert len(scenario.interventions) == 2

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            parse_scenario("  ")
        with pytest.raises(ValueError):
            Scenario(())


class TestValidation:
    def test_unknown_residence(self):
        with pytest.raises(ValueError, match="unknown residences"):
            EnableISPv6(residences=("Z",))

    def test_unknown_provider(self):
        with pytest.raises(ValueError, match="unknown provider"):
            DualStackProvider(provider="Initech")

    def test_unknown_country(self):
        with pytest.raises(ValueError, match="no vantage in country"):
            DeployNAT64(country="XX")

    def test_block_rate_bounds(self):
        with pytest.raises(ValueError):
            PolicyBlockCountry(country="CN", block_rate=1.5)

    def test_multiplier_positive(self):
        with pytest.raises(ValueError):
            AcceleratedAdoption(multiplier=0.0)


class TestLayers:
    def test_layer_declarations(self):
        assert EnableISPv6().LAYERS == frozenset({"traffic"})
        assert DualStackProvider(provider="Amazon").LAYERS == frozenset(
            {"traffic", "census"}
        )
        assert DeployNAT64(country="JP").LAYERS == frozenset({"observatory"})
        assert HappyEyeballsTimerChange().LAYERS == frozenset({"traffic"})

    def test_as_scenario_coercions(self):
        single = as_scenario("nat64:DE")
        assert as_scenario(single) is single
        assert as_scenario(DeployNAT64(country="DE")) == single
        assert as_scenario([DeployNAT64(country="DE")]) == single


class TestTransforms:
    def test_ispv6_makes_every_device_capable(self):
        from repro.traffic.residences import build_paper_residences

        profiles = EnableISPv6(residences=("C",)).transform_profiles(
            build_paper_residences()
        )
        by_name = {p.name: p for p in profiles}
        assert all(capable for _, capable, _ in by_name["C"].device_specs)
        # untouched residences keep their broken devices
        assert any(not capable for _, capable, _ in by_name["E"].device_specs)

    def test_dualstack_transforms_matching_catalog_services(self):
        from repro.traffic.apps import build_service_catalog

        catalog = DualStackProvider(provider="Amazon").transform_catalog(
            build_service_catalog()
        )
        amazon = [s for s in catalog if "amazon" in s.name.lower()]
        assert amazon and all(s.ipv6_support == 1.0 for s in amazon)

    def test_nat64_transforms_only_the_country(self):
        from repro.observatory.vantage import NetworkPolicy, build_vantage_fleet

        fleet = DeployNAT64(country="US").transform_fleet(build_vantage_fleet())
        for vantage in fleet:
            if vantage.country == "US":
                assert vantage.policy is NetworkPolicy.NAT64
            else:
                assert vantage.policy is not NetworkPolicy.NAT64 or vantage.country in (
                    "JP", "IN",  # NAT64 archetypes in the default fleet
                )

    def test_accelerate_caps_drift_at_one(self):
        from repro.observatory.rounds import ObservatoryConfig

        config = AcceleratedAdoption(multiplier=100.0).transform_observatory_config(
            ObservatoryConfig()
        )
        assert config.adoption_drift == 1.0

    def test_hetimer_overrides_resolution_delay(self):
        config = HappyEyeballsTimerChange(
            resolution_delay_ms=300.0
        ).transform_he_config(None)
        assert config.resolution_delay == pytest.approx(0.3)
        assert config.attempt_delay == pytest.approx(0.25)  # RFC default kept


class TestDefaultGrid:
    def test_grid_covers_every_kind(self):
        grid = default_sweep_grid()
        kinds = {
            intervention.KIND
            for scenario in grid
            for intervention in scenario.interventions
        }
        assert kinds == set(INTERVENTION_TYPES)
        specs = [scenario.spec() for scenario in grid]
        assert len(specs) == len(set(specs))
