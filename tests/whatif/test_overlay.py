"""OverlayStudy: perturbed layers rebuild, untouched layers cache-hit.

The cache-reuse accounting tests assert on ``BUILD_COUNTS`` deltas --
the same proof the session memoization tests use -- so "reuses the
baseline" means *zero* rebuilds of untouched layers, not "was probably
fast".
"""

import pytest

from repro.api import BUILD_COUNTS, Study, StudyConfig
from repro.datasets import build_residence_study
from repro.whatif import OverlayStudy

#: One tiny world private to this module: the seed differs from the
#: other whatif test modules so the exact BUILD_COUNTS accounting below
#: cannot be satisfied by overlays another module already cached.
SMALL = StudyConfig(
    days=5, sites=110, seed=13, probe_targets=50, probe_interval_days=2,
)


@pytest.fixture(scope="module")
def baseline():
    study = Study(SMALL)
    study.traffic, study.census, study.observatory  # warm every layer
    return study


def _deltas(before):
    return {
        key: BUILD_COUNTS[key] - before.get(key, 0)
        for key in set(BUILD_COUNTS) | set(before)
        if BUILD_COUNTS[key] != before.get(key, 0)
    }


class TestCacheReuseAccounting:
    def test_observatory_only_overlay_rebuilds_zero_traffic_census(self, baseline):
        before = BUILD_COUNTS.copy()
        overlay = OverlayStudy(baseline, "nat64:US")
        overlay.observatory
        overlay.traffic  # untouched layer: baseline cache hit
        assert _deltas(before) == {"whatif:observatory": 1}

    def test_untouched_layers_are_the_baseline_objects(self, baseline):
        overlay = OverlayStudy(baseline, "block:CN@0.5")
        assert overlay.traffic is baseline.traffic
        assert overlay.census is baseline.census
        assert overlay.observatory is not baseline.observatory

    def test_traffic_only_overlay_keeps_census_and_observatory(self, baseline):
        before = BUILD_COUNTS.copy()
        overlay = OverlayStudy(baseline, "hetimer:300")
        overlay.traffic
        assert overlay.observatory is baseline.observatory
        assert overlay.census is baseline.census
        assert _deltas(before) == {"whatif:traffic": 1}

    def test_census_perturbation_cascades_to_derived_layers(self, baseline):
        before = BUILD_COUNTS.copy()
        overlay = OverlayStudy(baseline, "dualstack:Cloudflare")
        overlay.census
        overlay.cloud
        overlay.dependencies
        overlay.observatory
        assert _deltas(before) == {
            "whatif:census": 1,
            "whatif:cloud": 1,
            "whatif:dependencies": 1,
            "whatif:observatory": 1,
        }

    def test_same_scenario_twice_is_one_rebuild(self, baseline):
        OverlayStudy(baseline, "nat64:JP").observatory
        before = BUILD_COUNTS.copy()
        OverlayStudy(baseline, "nat64:JP").observatory
        assert _deltas(before) == {}

    def test_different_scenarios_do_not_share_perturbed_entries(self, baseline):
        first = OverlayStudy(baseline, "block:CN@0.5").observatory
        second = OverlayStudy(baseline, "block:CN@0.9").observatory
        assert first is not second


class TestOverlaySemantics:
    def test_nat64_raises_availability_in_that_country_only(self, baseline):
        from repro.whatif.sweep import availability_by_country

        overlay = OverlayStudy(baseline, "nat64:US")
        base = availability_by_country(baseline.observatory)
        counter = availability_by_country(overlay.observatory)
        countries = baseline.observatory.countries
        us = countries.index("US")
        assert counter[us] > base[us]
        for index, country in enumerate(countries):
            if country != "US":
                assert counter[index] == pytest.approx(base[index])

    def test_dualstack_provider_adds_aaaa_ground_truth(self, baseline):
        overlay = OverlayStudy(baseline, "dualstack:Amazon")
        def aaaa_count(census):
            return sum(
                placement.has_aaaa
                for tenant in census.ecosystem.tenants.values()
                for placement in tenant.placements
            )
        assert aaaa_count(overlay.census) > aaaa_count(baseline.census)

    def test_prebuilt_baseline_rejected(self):
        traffic = build_residence_study(num_days=3, seed=9005, residences=("A",))
        prebuilt = Study.from_prebuilt(traffic=traffic)
        with pytest.raises(ValueError, match="prebuilt"):
            OverlayStudy(prebuilt, "nat64:DE")

    def test_overlay_from_bare_config(self):
        overlay = OverlayStudy(SMALL, "accelerate:3")
        assert overlay.perturbed == frozenset({"observatory"})
        assert overlay.config.whatif_scenarios is None


class TestEnableProviderAaaa:
    def test_mutation_is_deterministic_and_counted(self, baseline):
        from repro.datasets.scenarios import build_census

        counts = []
        for _ in range(2):
            census = build_census(num_sites=SMALL.sites, seed=SMALL.seed)
            counts.append(census.ecosystem.enable_provider_aaaa("Amazon"))
        assert counts[0] == counts[1] > 0

    def test_unknown_provider_rejected(self, baseline):
        with pytest.raises(ValueError, match="unknown provider"):
            baseline.census.ecosystem.enable_provider_aaaa("Initech")
