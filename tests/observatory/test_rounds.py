"""Round runner: scheduling, determinism, and the pool fallback.

The acceptance-critical property: for a fixed seed, the parallel and
sequential round runners produce **bit-identical** ProbeFrames (every
vantage draws from its own seeded RNG substream, one sub-stream per
round, so placement and ordering cannot leak into the results).
"""

import warnings

import pytest

from repro.observatory.rounds import (
    ObservatoryConfig,
    adoption_schedule,
    build_targets,
    run_observatory,
)
from repro.util.procpool import reset_pool_fallback_warnings, warn_pool_fallback
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

SITES = 120
TARGETS = 80


@pytest.fixture(scope="module")
def ecosystem():
    return WebEcosystem(WebEcosystemConfig(num_sites=SITES, seed=11))


@pytest.fixture(scope="module")
def config():
    return ObservatoryConfig(
        num_days=21, probe_interval_days=7, max_targets=TARGETS, seed=11,
        parallel=False,
    )


class TestScheduling:
    def test_round_days(self):
        config = ObservatoryConfig(num_days=21, probe_interval_days=7)
        assert config.round_days == (0, 7, 14)
        assert ObservatoryConfig(num_days=1).round_days == (0,)
        assert ObservatoryConfig(
            num_days=14, probe_interval_days=14
        ).round_days == (0,)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ObservatoryConfig(num_days=0)
        with pytest.raises(ValueError):
            ObservatoryConfig(probe_interval_days=0)
        with pytest.raises(ValueError):
            ObservatoryConfig(max_targets=0)


class TestTargets:
    def test_rank_order_and_cap(self, ecosystem):
        targets = build_targets(ecosystem, max_targets=TARGETS)
        assert len(targets) == TARGETS
        assert [t.rank for t in targets] == list(range(1, TARGETS + 1))

    def test_live_sites_probe_main_host(self, ecosystem):
        targets = build_targets(ecosystem, max_targets=TARGETS)
        for target in targets:
            plan = ecosystem.plan_of(target.etld1)
            if plan.website is not None:
                assert target.host == plan.website.main_host
            else:
                assert target.host == target.etld1

    def test_cap_beyond_universe(self, ecosystem):
        assert len(build_targets(ecosystem, max_targets=10_000)) == SITES


class TestDeterminism:
    def test_parallel_equals_sequential_bit_identical(self, ecosystem, config):
        sequential = run_observatory(ecosystem, config)
        parallel = run_observatory(
            ecosystem,
            ObservatoryConfig(
                num_days=config.num_days,
                probe_interval_days=config.probe_interval_days,
                max_targets=config.max_targets,
                seed=config.seed,
                parallel=2,
            ),
        )
        assert sequential.frame.data.tobytes() == parallel.frame.data.tobytes()
        assert sequential.frame.vantages == parallel.frame.vantages
        assert sequential.frame.countries == parallel.frame.countries
        assert sequential.frame.targets == parallel.frame.targets

    def test_same_seed_same_frame(self, ecosystem, config):
        first = run_observatory(ecosystem, config)
        second = run_observatory(ecosystem, config)
        assert first.frame.data.tobytes() == second.frame.data.tobytes()

    def test_different_seed_differs(self, ecosystem, config):
        base = run_observatory(ecosystem, config)
        other = run_observatory(
            ecosystem,
            ObservatoryConfig(
                num_days=config.num_days,
                probe_interval_days=config.probe_interval_days,
                max_targets=config.max_targets,
                seed=12,
                parallel=False,
            ),
        )
        assert base.frame.data.tobytes() != other.frame.data.tobytes()

    def test_rows_cover_every_pair_every_round(self, ecosystem, config):
        obs = run_observatory(ecosystem, config)
        rounds = len(config.round_days)
        assert len(obs.frame) == rounds * len(obs.fleet) * len(obs.targets)
        assert obs.num_rounds == rounds

    def test_probing_does_not_touch_ecosystem_resolver(self, ecosystem, config):
        before = ecosystem.resolver.queries_issued
        run_observatory(ecosystem, config)
        assert ecosystem.resolver.queries_issued == before


class TestAdoptionDrift:
    """Mid-window adoption is what makes the takeoff curve take off."""

    def test_schedule_is_deterministic_and_bounded(self, ecosystem):
        targets = build_targets(ecosystem, max_targets=TARGETS)
        config = ObservatoryConfig(num_days=60, adoption_drift=0.5, seed=11)
        schedule = adoption_schedule(targets, config)
        assert schedule == adoption_schedule(targets, config)
        assert 0 < len(schedule) < len(targets)
        for day, addresses in schedule.values():
            assert 0 <= day < config.num_days
            assert all(address.is_v6 for address in addresses)

    def test_zero_drift_schedules_nothing(self, ecosystem):
        targets = build_targets(ecosystem, max_targets=TARGETS)
        config = ObservatoryConfig(num_days=60, adoption_drift=0.0)
        assert adoption_schedule(targets, config) == {}

    def test_availability_takes_off_across_rounds(self, ecosystem):
        obs = run_observatory(
            ecosystem,
            ObservatoryConfig(
                num_days=60, probe_interval_days=20, max_targets=TARGETS,
                adoption_drift=0.5, seed=11, parallel=False,
            ),
        )
        first = obs.frame.select(round_index=0, country="NL")
        last = obs.frame.select(round_index=obs.num_rounds - 1, country="NL")
        assert last.available.sum() > first.available.sum()

    def test_zero_drift_is_flat_for_deterministic_vantages(self, ecosystem):
        obs = run_observatory(
            ecosystem,
            ObservatoryConfig(
                num_days=60, probe_interval_days=20, max_targets=TARGETS,
                adoption_drift=0.0, seed=11, parallel=False,
            ),
        )
        per_round = [
            int(obs.frame.select(round_index=r, country="NL").available.sum())
            for r in range(obs.num_rounds)
        ]
        assert len(set(per_round)) == 1

    def test_drift_invisible_to_v4_only_vantages(self, ecosystem):
        obs = run_observatory(
            ecosystem,
            ObservatoryConfig(
                num_days=60, probe_interval_days=20, max_targets=TARGETS,
                adoption_drift=1.0, seed=11, parallel=False,
            ),
        )
        assert not obs.frame.select(country="ZA").available.any()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ObservatoryConfig(adoption_drift=1.5)


class TestPoolFallbackWarning:
    def test_broken_pool_warns_once(self, ecosystem, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        import repro.util.procpool as procpool_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise BrokenProcessPool("no pool in this sandbox")

        monkeypatch.setattr(procpool_module, "ProcessPoolExecutor", ExplodingPool)
        reset_pool_fallback_warnings()
        config = ObservatoryConfig(
            num_days=7, max_targets=10, seed=11, parallel=2
        )
        with pytest.warns(RuntimeWarning, match="observatory probe rounds"):
            obs = run_observatory(ecosystem, config)
        assert len(obs.frame) == len(obs.fleet) * 10
        # One-time: a second fallback stays quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_observatory(ecosystem, config)
        reset_pool_fallback_warnings()

    def test_warn_helper_is_once_per_process(self):
        reset_pool_fallback_warnings()
        with pytest.warns(RuntimeWarning):
            warn_pool_fallback("ctx-a", "reason")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_pool_fallback("ctx-a", "again")  # silent
            warn_pool_fallback("ctx-b", "reason")  # other subsystem: silent too
        reset_pool_fallback_warnings()
