"""Aggregation invariants over a real (small) observatory run."""

import pytest

from repro.observatory.analysis import (
    country_availability,
    policy_verdicts,
    site_spread,
    takeoff_series,
)
from repro.observatory.probe import ProbeVerdict
from repro.observatory.rounds import ObservatoryConfig, run_observatory
from repro.observatory.vantage import NetworkPolicy
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig


@pytest.fixture(scope="module")
def obs():
    ecosystem = WebEcosystem(WebEcosystemConfig(num_sites=150, seed=3))
    return run_observatory(
        ecosystem,
        ObservatoryConfig(
            num_days=28, probe_interval_days=14, max_targets=100, seed=3,
            parallel=False,
        ),
    )


class TestCountryAvailability:
    def test_partitions_and_ranges(self, obs):
        rows = country_availability(obs)
        assert [r.country for r in rows] == list(obs.countries)
        assert sum(r.probes for r in rows) == len(obs.frame)
        assert sum(r.vantages for r in rows) == len(obs.fleet)
        for row in rows:
            assert 0.0 <= row.available_share <= row.aaaa_share <= 1.0

    def test_v4_only_country_is_zero(self, obs):
        by_country = {r.country: r for r in country_availability(obs)}
        # ZA's only vantage is v4-only transit: binary always says no.
        assert by_country["ZA"].available == 0

    def test_nat64_overcounts_native(self, obs):
        by_country = {r.country: r for r in country_availability(obs)}
        assert by_country["JP"].available_share > by_country["NL"].available_share
        assert by_country["JP"].synthesized > 0


class TestTakeoff:
    def test_series_shape(self, obs):
        series = takeoff_series(obs)
        assert series.days == obs.config.round_days
        assert len(series.overall) == obs.num_rounds
        assert set(series.by_country) == set(obs.countries)
        for shares in series.by_country.values():
            assert len(shares) == obs.num_rounds
            assert all(0.0 <= s <= 1.0 for s in shares)

    def test_overall_is_probe_weighted_mean(self, obs):
        series = takeoff_series(obs)
        first_round = obs.frame.select(round_index=0)
        expected = first_round.available.sum() / len(first_round)
        assert series.overall[0] == pytest.approx(expected)


class TestPolicyVerdicts:
    def test_covers_fleet_and_probes(self, obs):
        rows = policy_verdicts(obs)
        assert {r.policy for r in rows} == {v.policy for v in obs.fleet}
        assert sum(r.probes for r in rows) == len(obs.frame)
        assert sum(r.vantages for r in rows) == len(obs.fleet)

    def test_policy_signatures(self, obs):
        by_policy = {r.policy: r for r in policy_verdicts(obs)}
        v4only = by_policy[NetworkPolicy.V4_ONLY]
        assert ProbeVerdict.V6_OK not in v4only.verdict_counts
        assert ProbeVerdict.NO_V6_ROUTE in v4only.verdict_counts
        nat64 = by_policy[NetworkPolicy.NAT64]
        assert ProbeVerdict.NO_AAAA not in nat64.verdict_counts
        broken = by_policy[NetworkPolicy.BROKEN_PMTU]
        assert ProbeVerdict.V6_PATH_BROKEN in broken.verdict_counts


class TestSiteSpread:
    def test_histogram_partitions_sites(self, obs):
        spread = site_spread(obs)
        assert spread.sites == len(obs.targets)
        assert sum(spread.histogram) == spread.sites
        assert spread.unanimous_no == spread.histogram[0]
        assert spread.unanimous_yes == spread.histogram[-1]
        assert (
            spread.contested
            == spread.sites - spread.unanimous_yes - spread.unanimous_no
        )

    def test_binary_answers_disagree_across_countries(self, obs):
        # The subsystem's raison d'etre: the same site gets different
        # binary answers from different countries.
        assert site_spread(obs).contested > 0
