"""The observatory as a Study layer and its registered artifacts."""

import pytest

from repro.api import BUILD_COUNTS, Study, StudyConfig, registry

SMALL = StudyConfig(
    days=6, sites=80, seed=9, probe_targets=40, probe_interval_days=3,
    parallel=False,
)

OBSERVATORY_ARTIFACTS = (
    "obs_vantages",
    "obs_availability",
    "obs_takeoff",
    "obs_policies",
    "obs_sites",
    "contrast",
)


class TestSessionLayer:
    def test_lazy_build_and_cache(self):
        study = Study(SMALL)
        before = BUILD_COUNTS["observatory"]
        obs = study.observatory
        assert BUILD_COUNTS["observatory"] == before + 1
        assert study.observatory is obs  # instance memo
        # A second session with an equal config shares the build.
        assert Study(SMALL).observatory is obs
        assert BUILD_COUNTS["observatory"] == before + 1

    def test_config_keys_the_cache(self):
        study = Study(SMALL)
        other = Study(SMALL.replace(probe_targets=20))
        assert other.observatory is not study.observatory
        assert len(other.observatory.targets) == 20

    def test_observatory_scales_with_config(self):
        obs = Study(SMALL).observatory
        assert len(obs.targets) == SMALL.probe_targets
        assert obs.config.round_days == (0, 3)
        assert obs.config.num_days == SMALL.days

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(probe_targets=0)
        with pytest.raises(ValueError):
            StudyConfig(probe_interval_days=0)


class TestArtifacts:
    def test_at_least_five_observatory_artifacts_registered(self):
        backed = {
            spec.name
            for spec in registry.specs()
            if "observatory" in spec.needs
        }
        assert len(backed) >= 5
        # Every observatory artifact must *declare* the layer it reads.
        assert set(OBSERVATORY_ARTIFACTS) <= backed

    @pytest.mark.parametrize("name", OBSERVATORY_ARTIFACTS)
    def test_artifact_renders_text_and_json(self, name):
        study = Study(SMALL)
        result = study.artifact(name)
        assert result.name == name
        assert result.to_text().strip()
        assert result.to_json()

    def test_contrast_contains_all_three_perspectives(self):
        study = Study(SMALL)
        result = study.artifact("contrast")
        assert result.rows, "contrast must produce per-country rows"
        countries = {row["country"] for row in result.rows}
        assert len(countries) == len(result.rows)
        for row in result.rows:
            for key in (
                "available_share",
                "census_full_share",
                "traffic_v6_byte_fraction",
            ):
                assert 0.0 <= row[key] <= 1.0
        graded = {
            (
                row["census_full_share"],
                row["census_partial_share"],
                row["census_v4only_share"],
            )
            for row in result.rows
        }
        assert len(graded) == 1, "graded readiness is one truth for all countries"
        usage = {row["traffic_v6_byte_fraction"] for row in result.rows}
        assert len(usage) == 1, "usage is one truth for all countries"
        binary = {row["available_share"] for row in result.rows}
        assert len(binary) > 1, "binary availability must vary by country"
