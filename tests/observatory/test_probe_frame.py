"""ProbeFrame mechanics: layout, interning, selection, canonical order."""

import numpy as np
import pytest

from repro.net.addr import Family
from repro.observatory.frame import PROBE_DTYPE, ProbeFrame
from repro.observatory.probe import ProbeResult, ProbeTarget, ProbeVerdict
from repro.observatory.rounds import fleet_country_codes
from repro.observatory.vantage import NetworkPolicy, VantagePoint

FLEET = (
    VantagePoint("a-1", "AA", NetworkPolicy.NATIVE),
    VantagePoint("b-1", "BB", NetworkPolicy.V4_ONLY),
    VantagePoint("a-2", "AA", NetworkPolicy.NATIVE),
)
TARGETS = (
    ProbeTarget("one.test", "www.one.test", 1),
    ProbeTarget("two.test", "www.two.test", 2),
)


def _result(target: ProbeTarget, verdict: ProbeVerdict) -> ProbeResult:
    ok = verdict is ProbeVerdict.V6_OK
    return ProbeResult(
        target=target,
        verdict=verdict,
        aaaa_present=verdict not in (ProbeVerdict.NO_AAAA, ProbeVerdict.TARGET_DOWN),
        synthesized_aaaa=False,
        client_family=Family.V6 if ok else Family.V4,
        v6_connect_time=0.025 if ok else None,
    )


def _block(round_index, vantage_index, country_index, verdicts):
    results = [_result(t, v) for t, v in zip(TARGETS, verdicts)]
    return ProbeFrame.encode_block(
        round_index,
        round_index * 7,
        vantage_index,
        country_index,
        results,
        np.arange(len(TARGETS), dtype=np.int32),
    )


@pytest.fixture()
def frame() -> ProbeFrame:
    country_codes, countries = fleet_country_codes(FLEET)
    blocks = [
        _block(r, v, country_codes[v], verdicts)
        for r, per_round in enumerate(
            [
                [
                    (ProbeVerdict.V6_OK, ProbeVerdict.NO_AAAA),
                    (ProbeVerdict.NO_V6_ROUTE, ProbeVerdict.NO_AAAA),
                    (ProbeVerdict.V6_OK, ProbeVerdict.V6_CONNECT_FAILED),
                ],
                [
                    (ProbeVerdict.V6_OK, ProbeVerdict.V6_OK),
                    (ProbeVerdict.NO_V6_ROUTE, ProbeVerdict.NO_AAAA),
                    (ProbeVerdict.V6_OK, ProbeVerdict.V6_OK),
                ],
            ]
        )
        for v, verdicts in enumerate(per_round)
    ]
    return ProbeFrame.assemble(
        tuple(v.name for v in FLEET),
        countries,
        tuple(t.etld1 for t in TARGETS),
        blocks,
    )


class TestAssembly:
    def test_shape_and_dtype(self, frame):
        assert frame.data.dtype == PROBE_DTYPE
        assert len(frame) == 2 * len(FLEET) * len(TARGETS)
        assert frame.num_rounds == 2

    def test_interning_tables(self, frame):
        assert frame.vantages == ("a-1", "b-1", "a-2")
        assert frame.countries == ("AA", "BB")  # first-appearance order
        assert frame.targets == ("one.test", "two.test")

    def test_canonical_row_order(self, frame):
        # Round-major, then fleet order, then target order.
        assert frame.round.tolist() == [0] * 6 + [1] * 6
        assert frame.vantage.tolist() == [0, 0, 1, 1, 2, 2] * 2
        assert frame.target.tolist() == [0, 1] * 6
        assert frame.day.tolist() == [0] * 6 + [7] * 6

    def test_empty_assembly(self):
        _, countries = fleet_country_codes(FLEET)
        frame = ProbeFrame.assemble(
            tuple(v.name for v in FLEET), countries, (), []
        )
        assert len(frame) == 0
        assert frame.num_rounds == 0

    def test_encoded_fields(self, frame):
        ok = frame.available
        assert frame.connect_ms[ok].min() > 0
        assert np.isnan(frame.connect_ms[~ok]).all()
        assert (frame.data["client_family"][ok] == 6).all()
        assert frame.rank.tolist() == [1, 2] * 6


class TestSelection:
    def test_select_round(self, frame):
        last = frame.select(round_index=1)
        assert len(last) == 6
        assert (last.round == 1).all()
        assert last.countries == frame.countries

    def test_select_country_and_vantage(self, frame):
        aa = frame.select(country="AA")
        assert len(aa) == 8  # two AA vantages x 2 targets x 2 rounds
        b = frame.select(vantage="b-1")
        assert len(b) == 4
        assert not b.available.any()

    def test_mask_view(self, frame):
        sub = frame.mask(frame.aaaa)
        assert len(sub) == int(frame.aaaa.sum())
        assert sub.targets == frame.targets

    def test_availability_is_v6_ok_only(self, frame):
        assert int(frame.available.sum()) == int(
            (frame.verdict == ProbeVerdict.V6_OK.value).sum()
        )
