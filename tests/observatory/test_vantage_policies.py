"""Policy semantics: each archetype skews the binary answer its own way.

These tests build tiny hand-rolled zones (a dual-stack target, a
v4-only target, a dead name) and check the verdicts each network policy
produces -- the overcounts (NAT64), the undercounts (v4-only transit,
lossy resolvers), and the false positives a handshake-only check cannot
see (broken PMTU).
"""

import pytest

from repro.net.addr import Family, IpAddress
from repro.net.dns import DnsRecordType, ZoneDatabase
from repro.observatory.probe import ProbeTarget, ProbeVerdict, Prober
from repro.observatory.resolver import (
    NAT64_PREFIX,
    VantageResolver,
    nat64_embedded_v4,
    nat64_synthesize,
)
from repro.observatory.vantage import (
    NetworkPolicy,
    VantagePoint,
    build_vantage_fleet,
)
from repro.util.rng import RngStream

V4 = IpAddress.parse("4.0.0.10")
V6 = IpAddress.parse("2600:0:1::10")

DUAL = ProbeTarget(etld1="dual.test", host="www.dual.test", rank=1)
V4ONLY = ProbeTarget(etld1="legacy.test", host="www.legacy.test", rank=2)
DEAD = ProbeTarget(etld1="gone.test", host="gone.test", rank=3)


@pytest.fixture()
def zones() -> ZoneDatabase:
    db = ZoneDatabase()
    dual = db.create_zone("dual.test")
    dual.add("www.dual.test", DnsRecordType.A, V4)
    dual.add("www.dual.test", DnsRecordType.AAAA, V6)
    legacy = db.create_zone("legacy.test")
    legacy.add("www.legacy.test", DnsRecordType.A, IpAddress.parse("4.0.0.20"))
    return db


def _prober(zones: ZoneDatabase, policy: NetworkPolicy, **knobs) -> Prober:
    vantage = VantagePoint(name="t-1", country="XX", policy=policy, **knobs)
    return Prober(vantage, VantageResolver.over(vantage, zones))


def _rng() -> RngStream:
    return RngStream(7, "test")


class TestNativePolicy:
    def test_dual_stack_target_is_available(self, zones):
        result = _prober(zones, NetworkPolicy.NATIVE).probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.V6_OK
        assert result.available
        assert result.aaaa_present and not result.synthesized_aaaa
        assert result.client_family is Family.V6
        assert result.v6_connect_time is not None

    def test_v4_only_target_reports_no_aaaa(self, zones):
        result = _prober(zones, NetworkPolicy.NATIVE).probe(V4ONLY, _rng())
        assert result.verdict is ProbeVerdict.NO_AAAA
        assert not result.available
        assert result.client_family is Family.V4

    def test_dead_target_reports_down(self, zones):
        result = _prober(zones, NetworkPolicy.NATIVE).probe(DEAD, _rng())
        assert result.verdict is ProbeVerdict.TARGET_DOWN
        assert result.client_family is None

    def test_unreachable_v6_edge_fails_connect(self, zones):
        vantage = VantagePoint(name="t-1", country="XX", policy=NetworkPolicy.NATIVE)
        prober = Prober(
            vantage, VantageResolver.over(vantage, zones), unreachable=[V6]
        )
        result = prober.probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.V6_CONNECT_FAILED
        # The dual-stack client quietly falls back to IPv4.
        assert result.client_family is Family.V4


class TestV4OnlyPolicy:
    def test_never_available(self, zones):
        prober = _prober(zones, NetworkPolicy.V4_ONLY)
        assert prober.probe(DUAL, _rng()).verdict is ProbeVerdict.NO_V6_ROUTE
        assert prober.probe(V4ONLY, _rng()).verdict is ProbeVerdict.NO_AAAA

    def test_client_still_works_over_v4(self, zones):
        result = _prober(zones, NetworkPolicy.V4_ONLY).probe(DUAL, _rng())
        assert result.client_family is Family.V4


class TestNat64Policy:
    def test_v4_only_target_becomes_available(self, zones):
        """The DNS64 overcount: binary says yes against an A-only site."""
        result = _prober(zones, NetworkPolicy.NAT64).probe(V4ONLY, _rng())
        assert result.verdict is ProbeVerdict.V6_OK
        assert result.synthesized_aaaa
        assert result.aaaa_present

    def test_real_aaaa_not_synthesized(self, zones):
        result = _prober(zones, NetworkPolicy.NAT64).probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.V6_OK
        assert not result.synthesized_aaaa

    def test_prefix_roundtrip(self):
        v4 = IpAddress.parse("192.0.2.33")
        mapped = nat64_synthesize(v4)
        assert mapped.is_v6
        assert mapped.value >> 96 == NAT64_PREFIX >> 96
        assert nat64_embedded_v4(mapped) == v4
        assert nat64_embedded_v4(V6) is None

    def test_synthesized_target_behind_dead_v4_edge_fails(self, zones):
        vantage = VantagePoint(name="t-1", country="XX", policy=NetworkPolicy.NAT64)
        prober = Prober(
            vantage,
            VantageResolver.over(vantage, zones),
            unreachable=[IpAddress.parse("4.0.0.20")],
        )
        result = prober.probe(V4ONLY, _rng())
        assert result.verdict is ProbeVerdict.V6_CONNECT_FAILED


class TestLossyResolverPolicy:
    def test_losses_undercount_dual_stack_targets(self, zones):
        prober = _prober(
            zones, NetworkPolicy.LOSSY_RESOLVER, aaaa_loss_rate=1.0
        )
        result = prober.probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.NO_AAAA
        assert not result.aaaa_present

    def test_zero_loss_is_native(self, zones):
        prober = _prober(
            zones, NetworkPolicy.LOSSY_RESOLVER, aaaa_loss_rate=0.0
        )
        assert prober.probe(DUAL, _rng()).verdict is ProbeVerdict.V6_OK


class TestBrokenPmtuPolicy:
    def test_blackhole_yields_path_broken(self, zones):
        prober = _prober(
            zones, NetworkPolicy.BROKEN_PMTU, pmtu_blackhole_rate=1.0
        )
        result = prober.probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.V6_PATH_BROKEN
        assert not result.available
        # The SYN completed: a handshake-only check would have said yes.
        assert result.v6_connect_time is not None


class TestPolicyBlockPolicy:
    def test_block_set_is_deterministic_and_partial(self, zones):
        vantage = VantagePoint(
            name="t-1", country="XX",
            policy=NetworkPolicy.POLICY_BLOCK, block_rate=0.5,
        )
        names = [f"site{i}.test" for i in range(200)]
        blocked = {name for name in names if vantage.blocks_target(name)}
        assert blocked == {name for name in names if vantage.blocks_target(name)}
        assert 0 < len(blocked) < len(names)

    def test_blocked_target_fails_connect(self, zones):
        prober = _prober(zones, NetworkPolicy.POLICY_BLOCK, block_rate=1.0)
        result = prober.probe(DUAL, _rng())
        assert result.verdict is ProbeVerdict.V6_CONNECT_FAILED

    def test_other_policies_block_nothing(self):
        vantage = VantagePoint(name="t-1", country="XX", policy=NetworkPolicy.NATIVE)
        assert not vantage.blocks_target("dual.test")


class TestFleet:
    def test_fleet_is_unique_and_covers_policies(self):
        fleet = build_vantage_fleet()
        names = [v.name for v in fleet]
        assert len(set(names)) == len(names)
        assert {v.policy for v in fleet} == set(NetworkPolicy)
        assert len({v.country for v in fleet}) >= 8

    def test_vantage_validation(self):
        with pytest.raises(ValueError):
            VantagePoint(name="", country="US", policy=NetworkPolicy.NATIVE)
        with pytest.raises(ValueError):
            VantagePoint(
                name="x", country="US", policy=NetworkPolicy.NATIVE,
                aaaa_loss_rate=1.5,
            )
