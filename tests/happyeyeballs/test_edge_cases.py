"""RFC 8305 edge cases the observatory policies exercise.

Two boundary behaviours matter to probe verdicts and were previously
unpinned: a AAAA answer landing *exactly* when the resolution delay
expires (IPv6 must keep its head start -- the boundary is inclusive),
and the all-attempts-fail path (the race must return a clean failure
rather than a bogus winner, because that failure becomes the
``V6_CONNECT_FAILED`` verdict).
"""

import pytest

from repro.happyeyeballs.algorithm import (
    AttemptOutcome,
    HappyEyeballs,
    HappyEyeballsConfig,
    StaticConnectivity,
)
from repro.net.addr import Family, IpAddress

V4 = IpAddress.parse("198.51.100.10")
V6 = IpAddress.parse("2001:db8::10")

CONFIG = HappyEyeballsConfig(resolution_delay=0.050, attempt_delay=0.250)


class TestResolutionDelayBoundary:
    def test_aaaa_exactly_at_resolution_delay_keeps_v6_first(self):
        """AAAA at t = A-time + resolution_delay: v6 still leads."""
        he = HappyEyeballs(CONFIG)
        result = he.connect(
            [V4], [V6], StaticConnectivity(),
            v4_resolution_time=0.010,
            v6_resolution_time=0.010 + CONFIG.resolution_delay,
        )
        assert result.connected
        assert result.used_family is Family.V6
        first = min(result.attempts, key=lambda a: a.start_time)
        assert first.family is Family.V6
        # Attempts start when the wait for the AAAA expired, not before.
        assert first.start_time == pytest.approx(0.010 + CONFIG.resolution_delay)

    def test_aaaa_just_after_resolution_delay_forfeits_head_start(self):
        """One tick later the delay has expired and IPv4 leads."""
        he = HappyEyeballs(CONFIG)
        result = he.connect(
            [V4], [V6], StaticConnectivity(),
            v4_resolution_time=0.010,
            v6_resolution_time=0.010 + CONFIG.resolution_delay + 1e-9,
        )
        assert result.connected
        first = min(result.attempts, key=lambda a: a.start_time)
        assert first.family is Family.V4
        assert result.used_family is Family.V4


class TestAllAttemptsFail:
    def test_clean_failure_verdict(self):
        """Every address unreachable: no winner, every attempt FAILED."""
        he = HappyEyeballs(CONFIG)
        result = he.connect(
            [V4], [V6], StaticConnectivity(default_latency=None),
        )
        assert not result.connected
        assert result.winner is None
        assert result.used_family is None
        assert result.connect_time is None
        assert len(result.attempts) == 2  # both SYNs left the host
        assert all(a.outcome is AttemptOutcome.FAILED for a in result.attempts)
        assert result.attempted_families() == {Family.V4, Family.V6}

    def test_v6_only_all_fail_is_clean(self):
        """The observatory's availability race: v6-only, all timeouts."""
        he = HappyEyeballs(CONFIG)
        result = he.connect(
            [], [V6, IpAddress.parse("2001:db8::11")],
            StaticConnectivity(default_latency=None),
        )
        assert not result.connected
        assert result.connect_time is None
        assert all(a.outcome is AttemptOutcome.FAILED for a in result.attempts)
        assert all(a.family is Family.V6 for a in result.attempts)

    def test_success_after_overall_timeout_is_not_a_winner(self):
        """A handshake completing past the overall timeout does not win."""
        config = HappyEyeballsConfig(overall_timeout=1.0)
        he = HappyEyeballs(config)
        result = he.connect(
            [], [V6], StaticConnectivity(default_latency=5.0),
        )
        assert not result.connected
        assert result.connect_time is None
