"""Tests for the RFC 8305 Happy Eyeballs implementation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.happyeyeballs.algorithm import (
    AttemptOutcome,
    HappyEyeballs,
    HappyEyeballsConfig,
    StaticConnectivity,
    interleave_addresses,
)
from repro.net.addr import Family, IpAddress

V4_A = IpAddress.parse("192.0.2.1")
V4_B = IpAddress.parse("192.0.2.2")
V6_A = IpAddress.parse("2001:db8::1")
V6_B = IpAddress.parse("2001:db8::2")


class TestConfig:
    def test_defaults_match_rfc(self):
        cfg = HappyEyeballsConfig()
        assert cfg.resolution_delay == pytest.approx(0.050)
        assert cfg.attempt_delay == pytest.approx(0.250)
        assert cfg.first_address_family_count == 1
        assert cfg.preferred_family is Family.V6

    def test_validation(self):
        with pytest.raises(ValueError):
            HappyEyeballsConfig(resolution_delay=-1)
        with pytest.raises(ValueError):
            HappyEyeballsConfig(attempt_delay=0)
        with pytest.raises(ValueError):
            HappyEyeballsConfig(first_address_family_count=0)
        with pytest.raises(ValueError):
            HappyEyeballsConfig(overall_timeout=0)


class TestInterleave:
    def test_v6_first_by_default(self):
        ordered = interleave_addresses([V4_A, V4_B], [V6_A, V6_B])
        assert ordered == [V6_A, V4_A, V6_B, V4_B]

    def test_first_family_count(self):
        ordered = interleave_addresses([V4_A], [V6_A, V6_B], first_address_family_count=2)
        assert ordered == [V6_A, V6_B, V4_A]

    def test_prefer_v4(self):
        ordered = interleave_addresses([V4_A, V4_B], [V6_A], preferred_family=Family.V4)
        assert ordered == [V4_A, V6_A, V4_B]

    def test_one_family_only(self):
        assert interleave_addresses([V4_A, V4_B], []) == [V4_A, V4_B]
        assert interleave_addresses([], [V6_A]) == [V6_A]

    def test_empty(self):
        assert interleave_addresses([], []) == []

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_no_address_lost(self, n4, n6, first_count):
        v4 = [IpAddress.v4(1000 + i) for i in range(n4)]
        v6 = [IpAddress.v6(2000 + i) for i in range(n6)]
        ordered = interleave_addresses(v4, v6, first_address_family_count=first_count)
        assert sorted(ordered, key=str) == sorted(v4 + v6, key=str)


class TestConnect:
    def test_v6_wins_on_dual_stack(self):
        he = HappyEyeballs()
        result = he.connect([V4_A], [V6_A], StaticConnectivity())
        assert result.connected
        assert result.used_family is Family.V6

    def test_v4_only_site_uses_v4(self):
        he = HappyEyeballs()
        result = he.connect([V4_A], [], StaticConnectivity())
        assert result.used_family is Family.V4

    def test_no_addresses(self):
        he = HappyEyeballs()
        result = he.connect([], [], StaticConnectivity())
        assert not result.connected
        assert result.attempts == ()
        assert result.connect_time is None

    def test_v6_unreachable_falls_back(self):
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: None})
        result = he.connect([V4_A], [V6_A], conn)
        assert result.connected
        assert result.used_family is Family.V4
        outcomes = {a.address: a.outcome for a in result.attempts}
        assert outcomes[V6_A] in (AttemptOutcome.FAILED, AttemptOutcome.CANCELLED)

    def test_all_unreachable(self):
        he = HappyEyeballs()
        conn = StaticConnectivity(default_latency=None)
        result = he.connect([V4_A], [V6_A], conn)
        assert not result.connected
        assert len(result.attempts) == 2

    def test_slow_v6_loses_race(self):
        """IPv6 slower than attempt_delay + v4 latency: IPv4 wins."""
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: 0.500, V4_A: 0.010})
        result = he.connect([V4_A], [V6_A], conn)
        assert result.used_family is Family.V4
        # The cancelled IPv6 attempt still sent a SYN: both families show
        # up as flows (the paper's flow-count inflation effect).
        assert result.attempted_families() == {Family.V4, Family.V6}

    def test_fast_v6_prevents_v4_attempt(self):
        """IPv6 connects within attempt_delay: no IPv4 SYN at all."""
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: 0.020, V4_A: 0.020})
        result = he.connect([V4_A], [V6_A], conn)
        assert result.used_family is Family.V6
        assert result.attempted_families() == {Family.V6}

    def test_late_aaaa_answer_forfeits_head_start(self):
        """AAAA arriving after the resolution delay lets IPv4 lead."""
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: 0.010, V4_A: 0.010})
        result = he.connect(
            [V4_A], [V6_A], conn, v4_resolution_time=0.010, v6_resolution_time=0.500
        )
        assert result.used_family is Family.V4

    def test_aaaa_within_resolution_delay_waits(self):
        """AAAA 30ms after A (inside the 50ms budget): IPv6 still leads."""
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: 0.010, V4_A: 0.010})
        result = he.connect(
            [V4_A], [V6_A], conn, v4_resolution_time=0.010, v6_resolution_time=0.040
        )
        assert result.used_family is Family.V6

    def test_connect_time_accounts_resolution(self):
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: 0.020})
        result = he.connect([], [V6_A], conn, v6_resolution_time=0.015)
        assert result.connect_time == pytest.approx(0.035)

    def test_attempts_sorted_by_start(self):
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V6_A: None, V6_B: None, V4_A: None, V4_B: None})
        result = he.connect([V4_A, V4_B], [V6_A, V6_B], conn)
        starts = [a.start_time for a in result.attempts]
        assert starts == sorted(starts)

    def test_winner_among_attempts(self):
        he = HappyEyeballs()
        result = he.connect([V4_A, V4_B], [V6_A, V6_B], StaticConnectivity())
        assert result.winner in result.attempts

    def test_overall_timeout(self):
        he = HappyEyeballs(HappyEyeballsConfig(overall_timeout=0.1))
        conn = StaticConnectivity(latencies={V6_A: 5.0})
        result = he.connect([], [V6_A], conn)
        assert not result.connected

    @given(
        st.floats(min_value=0.001, max_value=0.4),
        st.floats(min_value=0.001, max_value=0.4),
    )
    def test_always_connects_when_both_reachable(self, lat4, lat6):
        he = HappyEyeballs()
        conn = StaticConnectivity(latencies={V4_A: lat4, V6_A: lat6})
        result = he.connect([V4_A], [V6_A], conn)
        assert result.connected
        # The winner's completion is no later than any successful attempt's.
        assert all(
            result.winner.end_time <= a.end_time
            for a in result.attempts
            if a.outcome is AttemptOutcome.SUCCEEDED
        )
