"""Property-based tests for Happy Eyeballs race invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.happyeyeballs.algorithm import (
    AttemptOutcome,
    HappyEyeballs,
    HappyEyeballsConfig,
    StaticConnectivity,
)
from repro.net.addr import Family, IpAddress

_LATENCY = st.one_of(st.none(), st.floats(min_value=0.001, max_value=2.0))


def _addresses(n4: int, n6: int) -> tuple[list[IpAddress], list[IpAddress]]:
    return (
        [IpAddress.v4(0x0A000000 + i) for i in range(n4)],
        [IpAddress.v6(0x20010DB8 << 96 | i) for i in range(n6)],
    )


class TestRaceInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.lists(_LATENCY, min_size=6, max_size=6),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_core_invariants(self, n4, n6, latencies, v6_res_time):
        v4_addrs, v6_addrs = _addresses(n4, n6)
        table = dict(zip(v4_addrs + v6_addrs, latencies))
        connectivity = StaticConnectivity(latencies=table, default_latency=None)
        he = HappyEyeballs()
        result = he.connect(
            v4_addrs, v6_addrs, connectivity,
            v4_resolution_time=0.01, v6_resolution_time=v6_res_time,
        )

        # 1. Winner only if some address is reachable within timeout.
        reachable = [a for a in v4_addrs + v6_addrs if table.get(a) is not None]
        if not reachable:
            assert not result.connected

        # 2. At most one SUCCEEDED attempt that is the winner; its end time
        #    is minimal among successes.
        successes = [a for a in result.attempts if a.outcome is AttemptOutcome.SUCCEEDED]
        if result.connected:
            assert result.winner in successes
            assert all(result.winner.end_time <= s.end_time for s in successes)

        # 3. Attempts are ordered by start time, and none starts after the
        #    race ended.
        starts = [a.start_time for a in result.attempts]
        assert starts == sorted(starts)
        if result.connected:
            assert all(a.start_time < result.winner.end_time for a in result.attempts)

        # 4. No attempt ends before it starts.
        assert all(a.end_time >= a.start_time for a in result.attempts)

        # 5. Every attempted address was actually a candidate.
        candidates = set(v4_addrs + v6_addrs)
        assert all(a.address in candidates for a in result.attempts)
        # No address is attempted twice.
        attempted = [a.address for a in result.attempts]
        assert len(attempted) == len(set(attempted))

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.001, max_value=0.2), st.floats(min_value=0.001, max_value=0.2))
    def test_v6_preferred_when_on_time_and_reachable(self, lat4, lat6):
        """With the AAAA answer on time and IPv6 reachable and reasonably
        fast, RFC 8305's preference makes IPv6 win whenever its handshake
        beats the attempt-delay head start."""
        v4_addrs, v6_addrs = _addresses(1, 1)
        connectivity = StaticConnectivity(
            latencies={v4_addrs[0]: lat4, v6_addrs[0]: lat6}
        )
        he = HappyEyeballs()
        result = he.connect(v4_addrs, v6_addrs, connectivity)
        assert result.connected
        if lat6 < he.config.attempt_delay:
            assert result.used_family is Family.V6

    def test_config_sweep_monotone_attempts(self):
        """Shrinking the attempt delay can only add (earlier) fallback
        attempts, never remove the winning one."""
        v4_addrs, v6_addrs = _addresses(1, 1)
        connectivity = StaticConnectivity(
            latencies={v4_addrs[0]: 0.02, v6_addrs[0]: 0.6}
        )
        slow = HappyEyeballs(HappyEyeballsConfig(attempt_delay=1.0))
        fast = HappyEyeballs(HappyEyeballsConfig(attempt_delay=0.05))
        slow_result = slow.connect(v4_addrs, v6_addrs, connectivity)
        fast_result = fast.connect(v4_addrs, v6_addrs, connectivity)
        assert slow_result.used_family is Family.V6  # patient: v6 finishes
        assert fast_result.used_family is Family.V4  # eager: v4 steals it
