"""End-to-end pipeline tests: every stage wired together, cross-checked
against ground truth the analyses never see."""

import numpy as np
import pytest

from repro.core import (
    analyze_dependencies,
    as_traffic_breakdown,
    attribute_domains,
    census_breakdown,
    classify_site,
    cloud_provider_breakdown,
    compute_residence_stats,
    hourly_fraction_series,
    mstl,
    multicloud_tenants,
    SiteClass,
)
from repro.datasets import build_census, build_residence_study
from repro.flowmon.export import FlowExporter
from repro.flowmon.monitor import FlowScope
from repro.web.ecosystem import SiteStatus


@pytest.fixture(scope="module")
def study():
    return build_residence_study(num_days=21, seed=77, residences=("A", "C"))


@pytest.fixture(scope="module")
def census():
    return build_census(num_sites=700, seed=77)


class TestClientPipeline:
    def test_generation_to_table1_to_mstl(self, study):
        """Traffic generation -> monitor -> stats -> MSTL, end to end."""
        dataset = study.dataset("A")
        stats = compute_residence_stats(dataset)
        assert stats.external.total_bytes > 0
        series = hourly_fraction_series(dataset, num_days=21)
        result = mstl(series, [24, 168])
        assert np.allclose(result.reconstruction(), series)

    def test_anonymized_export_preserves_analysis(self, study):
        """CryptoPAN export keeps exactly what the analyses need: the
        server side in cleartext, clients pseudonymous but stable."""
        dataset = study.dataset("A")
        exporter = FlowExporter(dataset.monitor, key=b"integration-test-key-0123456789")
        exported = exporter.export_all()
        assert len(exported) == len(dataset.monitor.records())
        config = dataset.monitor.config
        pseudonyms: dict = {}
        for record, raw in zip(exported, dataset.monitor.records()):
            if record.scope is FlowScope.EXTERNAL:
                # Peer intact: AS attribution still possible post-export.
                assert dataset.universe.routing.origin_of(record.peer) is not None
            # Pseudonyms are deterministic per client address and keep the
            # network prefix (the paper's /24 / /64 policy).
            for clear, anon in (
                (raw.key.src, record.anonymized_src),
                (raw.key.dst, record.anonymized_dst),
            ):
                if config.is_local(clear):
                    assert pseudonyms.setdefault(clear, anon) == anon
                    protected = 24 if clear.family.bits == 32 else 64
                    for bit in range(protected):
                        assert anon.bit(bit) == clear.bit(bit)

    def test_byte_totals_conserved_through_export(self, study):
        dataset = study.dataset("C")
        exporter = FlowExporter(dataset.monitor, key=b"integration-test-key-0123456789")
        raw_total = sum(r.total_bytes for r in dataset.monitor.records())
        exported_total = sum(r.bytes_total for r in exporter.export_all())
        assert raw_total == exported_total

    def test_as_breakdown_consistent_with_stats(self, study):
        """Per-AS byte totals (unfiltered) sum to the external total."""
        dataset = study.dataset("A")
        entries = as_traffic_breakdown(dataset, min_volume_share=0.0)
        stats = compute_residence_stats(dataset)
        assert sum(e.total_bytes for e in entries) == stats.external.total_bytes
        assert sum(e.v6_bytes for e in entries) == stats.external.v6_bytes


class TestServerPipeline:
    def test_classification_matches_ground_truth(self, census):
        """The census's classes agree with the generative ground truth the
        crawler never saw."""
        eco = census.ecosystem
        mismatches = []
        for result in census.dataset.results:
            plan = eco.plan_of(result.site)
            cls = classify_site(result)
            if plan.status is SiteStatus.NXDOMAIN:
                if cls is not SiteClass.LOADING_FAILURE_NXDOMAIN:
                    mismatches.append((result.site, plan.status, cls))
            elif plan.status is SiteStatus.OK:
                main_truth = plan.tenant.main_placement.has_aaaa
                if main_truth:
                    if cls not in (SiteClass.IPV6_PARTIAL, SiteClass.IPV6_FULL):
                        mismatches.append((result.site, "AAAA", cls))
                elif cls is not SiteClass.IPV4_ONLY:
                    mismatches.append((result.site, "A-only", cls))
        assert not mismatches, mismatches[:5]

    def test_full_sites_truly_have_no_v4only_truth(self, census):
        """Sites classified IPv6-full embed no IPv4-only third party."""
        eco = census.ecosystem
        for result in census.dataset.connected_results():
            if classify_site(result) is not SiteClass.IPV6_FULL:
                continue
            plan = eco.plan_of(result.site)
            for service in plan.third_parties:
                tenant = eco.tenants[service.domain]
                fetched = {r.fqdn for r in result.resource_requests() if r.succeeded}
                for placement in tenant.placements:
                    if placement.fqdn in fetched:
                        assert placement.has_aaaa, (result.site, placement.fqdn)

    def test_dependency_analysis_consistent_with_breakdown(self, census):
        breakdown = census_breakdown(census.dataset)
        analysis = analyze_dependencies(census.dataset)
        assert analysis.num_partial == breakdown.ipv6_partial


class TestCloudPipeline:
    def test_attribution_matches_tenancy_ground_truth(self, census):
        """BGP-attributed per-FQDN orgs agree with the placement plan."""
        eco = census.ecosystem
        views = attribute_domains(census.dataset, eco.routing, eco.registry)
        checked = 0
        for plan in eco.plans.values():
            if plan.tenant is None or plan.status is not SiteStatus.OK:
                continue
            provider_orgs = {
                p.fqdn: p.service.v4_org_id for p in plan.tenant.placements
            }
            for fqdn, org_id in provider_orgs.items():
                view = views.get(fqdn)
                if view is None or view.v4_org is None:
                    continue
                assert view.v4_org.org_id == org_id, fqdn
                checked += 1
        assert checked > 200

    def test_provider_totals_cover_attributed_fqdns(self, census):
        eco = census.ecosystem
        views = attribute_domains(census.dataset, eco.routing, eco.registry)
        stats = cloud_provider_breakdown(views)
        attributed = sum(
            1 for v in views.values() if v.v4_org is not None or v.v6_org is not None
        )
        total_cells = sum(s.total for s in stats)
        # Split-origin domains count twice (once per org), so the cell sum
        # is at least the attributed-FQDN count.
        assert total_cells >= attributed

    def test_multicloud_tenants_exist_in_ground_truth(self, census):
        eco = census.ecosystem
        views = attribute_domains(census.dataset, eco.routing, eco.registry)
        tenants = multicloud_tenants(views)
        confirmed = 0
        for etld1 in list(tenants)[:50]:
            truth = eco.tenants.get(etld1)
            if truth is None:
                continue
            if truth.is_multicloud:
                confirmed += 1
        assert confirmed > 0
