"""Detector semantics on synthetic series: thresholds, direction, silence."""

import numpy as np

from repro.sentinel.config import DEFAULT_SENTINEL_CONFIG, SentinelConfig
from repro.sentinel.detect import detect_series
from repro.sentinel.series import SignalSeries

CFG = DEFAULT_SENTINEL_CONFIG


def series(values, scopes=("*",), signal="usage"):
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    return SignalSeries(
        signal=signal,
        days=tuple(range(matrix.shape[0])),
        scopes=scopes,
        values=matrix,
    )


class TestSilence:
    def test_flat_series_emits_nothing(self):
        assert detect_series(series([0.3] * 10), CFG) == []

    def test_noise_below_threshold_emits_nothing(self):
        values = [0.30, 0.31, 0.30, 0.29, 0.30, 0.31, 0.29, 0.30]
        assert detect_series(series(values), CFG) == []

    def test_too_short_series_emits_nothing(self):
        # A huge jump, but with fewer points than min_history of baseline.
        assert detect_series(series([0.0, 0.0, 9.9]), CFG) == []

    def test_spike_inside_warmup_window_emits_nothing(self):
        # The deviating point sits at index 2 < min_history: still warm-up.
        values = [0.0, 0.0, 9.9, 9.9, 9.9, 9.9]
        events = detect_series(series(values), CFG)
        assert all(event.day >= CFG.min_history for event in events)


class TestDeviation:
    def test_spike_after_warmup_fires_once_upward(self):
        values = [0.0, 0.0, 0.0, 0.0, 0.5]
        [event] = detect_series(series(values), CFG)
        assert event.day == 4
        assert event.scope == "*"
        assert event.direction == "up"
        assert event.z > CFG.z_watch
        assert event.value == 0.5
        assert event.baseline == 0.0

    def test_drop_fires_downward(self):
        values = [0.5, 0.5, 0.5, 0.5, 0.0]
        [event] = detect_series(series(values), CFG)
        assert event.direction == "down"
        assert event.z < 0

    def test_severity_tiers_scale_with_z(self):
        # Flat baseline: sigma is the floor, so z = spike / sigma_floor.
        floor = CFG.sigma_floor

        def spike(magnitude):
            values = [0.0, 0.0, 0.0, 0.0, magnitude]
            [event] = detect_series(series(values), CFG)
            return event

        assert spike(floor * (CFG.z_watch + 0.1)).severity == "watch"
        assert spike(floor * (CFG.z_elevated + 0.1)).severity == "elevated"
        assert spike(floor * (CFG.z_critical + 0.1)).severity == "critical"

    def test_sigma_floor_bounds_z(self):
        [event] = detect_series(series([0.0, 0.0, 0.0, 0.0, 1.0]), CFG)
        assert event.sigma >= CFG.sigma_floor
        assert event.z <= 1.0 / CFG.sigma_floor

    def test_at_most_one_event_per_scope_per_day(self):
        matrix = np.zeros((6, 2))
        matrix[5, 0] = 0.9
        matrix[5, 1] = 0.9
        events = detect_series(series(matrix, scopes=("DE", "FR")), CFG)
        assert len(events) == 2
        assert len({(e.signal, e.scope, e.day) for e in events}) == len(events)
        assert [e.scope for e in events] == ["DE", "FR"]  # day, then scope


class TestConfig:
    def test_min_history_is_honored(self):
        eager = SentinelConfig(min_history=1)
        values = [0.0, 0.9, 0.0, 0.0]
        assert detect_series(series(values), CFG) == []
        assert detect_series(series(values), eager)

    def test_custom_watch_threshold(self):
        strict = SentinelConfig(z_watch=50.0, z_elevated=60.0, z_critical=70.0)
        values = [0.0, 0.0, 0.0, 0.0, 0.4]
        assert detect_series(series(values), CFG)
        assert detect_series(series(values), strict) == []
