"""Feed-level contracts: determinism, parallel bit-identity, telemetry."""

import json

import pytest

from repro.api import Study, StudyConfig, clear_caches
from repro.sentinel.config import SEVERITIES, SIGNALS
from repro.telemetry import registry as metrics_registry

CONFIG = StudyConfig(days=6, sites=140, probe_targets=70, parallel=False)


@pytest.fixture(autouse=True)
def _cold():
    clear_caches()
    yield
    clear_caches()


class TestFeedShape:
    def test_feed_census_and_ordering(self):
        feed = Study(CONFIG).sentinel
        assert feed.signals == SIGNALS
        assert feed.days == CONFIG.days
        assert feed.points > 0
        assert "*" in feed.scopes
        keys = [(e.day, e.signal, e.scope) for e in feed.events]
        assert keys == sorted(keys)
        # At most one event per signal per scope per day.
        assert len(set(keys)) == len(keys)
        for event in feed.events:
            assert event.severity in SEVERITIES
            assert event.direction in ("up", "down")
            assert event.signal in SIGNALS

    def test_layer_is_cached_per_config(self):
        study = Study(CONFIG)
        assert study.sentinel is Study(CONFIG).sentinel

    def test_since_filters_by_day(self):
        feed = Study(CONFIG).sentinel
        assert feed.since(0) == feed.events
        assert all(e.day >= 3 for e in feed.since(3))


class TestDeterminism:
    def test_same_seed_yields_identical_feed(self):
        first = Study(CONFIG).sentinel
        clear_caches()
        second = Study(CONFIG).sentinel
        assert first is not second
        assert first == second

    def test_parallel_and_sequential_feeds_are_bit_identical(self):
        sequential = Study(CONFIG).sentinel
        clear_caches()
        parallel = Study(CONFIG.replace(parallel=2)).sentinel
        assert sequential.events == parallel.events
        assert sequential.points == parallel.points

    def test_different_seed_may_differ_but_is_self_consistent(self):
        reseeded = CONFIG.replace(seed=7)
        first = Study(reseeded).sentinel
        clear_caches()
        assert first == Study(reseeded).sentinel


class TestCliFeed:
    def test_cli_json_feed_is_byte_identical_across_runs(self, capsys):
        from repro.__main__ import main

        argv = [
            "sentinel", "--days", "6", "--sites", "140",
            "--probe-targets", "70", "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        clear_caches()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["count"] == len(document["events"])
        assert document["signals"] == list(SIGNALS)

    def test_cli_rejects_negative_since(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["sentinel", "--since", "-1"])


class TestTelemetry:
    def test_scan_populates_counter_and_histogram(self):
        Study(CONFIG).sentinel
        registry = metrics_registry()
        counter = registry.get("sentinel_events_total")
        assert counter is not None
        # Zero samples are pre-seeded for every signal x severity, so
        # the family renders even when a scan stays silent.
        rendered = registry.render_prometheus()
        assert "sentinel_events_total" in rendered
        assert "sentinel_scan_seconds" in rendered
        total = sum(value for _, value in counter.sample_items())
        feed = Study(CONFIG).sentinel  # cache hit: no double counting
        assert total >= len(feed.events)
