"""``/v1/profile``: captures, formats, validation, wire schema."""

import json
import os
from pathlib import Path

import pytest

from repro.api import StudyConfig, clear_caches
from repro.prof import disable_profiling, enable_profiling
from repro.serve import ArtifactService
from repro.store import set_store
from repro.telemetry import reset_trace

CONFIG = StudyConfig(days=6, sites=140, probe_targets=70, parallel=False)

GOLDEN = Path(__file__).parents[1] / "api" / "golden"


@pytest.fixture(autouse=True)
def _no_ambient_store():
    set_store(None)
    yield
    set_store(None)


@pytest.fixture(scope="module")
def service():
    """A service that handled one *profiled* request."""
    clear_caches()
    reset_trace()
    service = ArtifactService(CONFIG, store=None)
    enable_profiling(spans=("serve:request",))
    try:
        assert service.handle("GET", "/v1/artifact/contrast").status == 200
    finally:
        disable_profiling()
    return service


class TestProfileEndpoint:
    def test_captured_request_shows_up(self, service):
        response = service.handle("GET", "/v1/profile?span=serve:request")
        assert response.status == 200
        document = response.json()
        assert document["count"] >= 1
        for profile in document["profiles"]:
            assert profile["span"] == "serve:request"
            assert profile["duration_ms"] > 0
            tree = profile["profile"]
            assert tree["functions"] > 0
            assert tree["roots"]

    def test_profiling_state_reflects_the_hook(self, service):
        document = service.handle("GET", "/v1/profile").json()
        assert document["profiling"] == {"enabled": False, "spans": []}
        enable_profiling(spans=("serve:request",))
        try:
            live = service.handle("GET", "/v1/profile").json()
        finally:
            disable_profiling()
        assert live["profiling"] == {
            "enabled": True, "spans": ["serve:request"],
        }

    def test_no_matching_span_is_an_empty_valid_200(self, service):
        document = service.handle(
            "GET", "/v1/profile?span=build:nothing"
        ).json()
        assert document["count"] == 0
        assert document["profiles"] == []

    def test_speedscope_format(self, service):
        document = service.handle(
            "GET", "/v1/profile?format=speedscope"
        ).json()
        assert document["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = document["shared"]["frames"]
        for profile in document["profiles"]:
            assert profile["type"] == "sampled"
            for stack in profile["samples"]:
                assert all(0 <= index < len(frames) for index in stack)

    def test_responses_are_never_cached(self, service):
        # Same contract as /v1/trace: the document observes the live
        # span ring, so no ETag, no revalidation, no hot-cache entry.
        response = service.handle("GET", "/v1/profile")
        assert response.status == 200
        assert response.header("ETag") is None
        assert response.header("Cache-Control") is None

    def test_endpoint_is_listed_and_labeled(self, service):
        from repro.serve.service import ENDPOINTS, endpoint_label

        assert "/v1/profile" in ENDPOINTS
        assert endpoint_label("/v1/profile") == "/v1/profile"
        assert endpoint_label("/v1/profile/") == "/v1/profile"
        listing = service.handle("GET", "/v1/artifacts").json()
        assert "/v1/profile" in listing["endpoints"]


class TestProfileValidation:
    @pytest.mark.parametrize(
        "query",
        ["span=", "format=nope", "last=nope", "last=-1", "spam=x",
         "format=TREE"],
    )
    def test_bad_parameters_are_400_json_not_500(self, service, query):
        response = service.handle("GET", f"/v1/profile?{query}")
        assert response.status == 400
        assert "error" in response.json()

    def test_unknown_format_lists_known(self, service):
        response = service.handle("GET", "/v1/profile?format=flamegraph")
        assert response.json()["known"] == ["tree", "speedscope"]

    def test_unknown_parameter_lists_known(self, service):
        response = service.handle("GET", "/v1/profile?spans=x")
        assert response.json()["known"] == ["span", "format", "last"]


class TestProfileWireSchema:
    def test_wire_schema_matches_golden(self, service):
        """Envelope key order, profile-entry fields, and call-tree node
        keys, pinned."""
        document = service.handle(
            "GET", "/v1/profile?span=serve:request"
        ).json()
        assert document["count"] >= 1

        def type_of(value):
            if value is None:
                return "null"
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, int):
                return "int"
            if isinstance(value, float):
                return "float"
            if isinstance(value, str):
                return "str"
            if isinstance(value, list):
                return "array"
            if isinstance(value, dict):
                return "object"
            raise TypeError(f"not a JSON value: {value!r}")  # pragma: no cover

        profile_fields: dict[str, set] = {}
        node_keys: set = set()
        tree_keys: set = set()

        def walk(node):
            node_keys.update(node)
            for child in node["children"]:
                walk(child)

        for profile in document["profiles"]:
            for key, value in profile.items():
                profile_fields.setdefault(key, set()).add(type_of(value))
            tree_keys.update(profile["profile"])
            for root in profile["profile"]["roots"]:
                walk(root)
        schema = {
            "envelope": {key: type_of(value) for key, value in document.items()},
            "key_order": list(document),
            "profile_fields": {
                key: sorted(types)
                for key, types in sorted(profile_fields.items())
            },
            "tree_keys": sorted(tree_keys),
            "node_keys": sorted(node_keys),
        }
        golden_path = GOLDEN / "profile.json"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.mkdir(exist_ok=True)
            golden_path.write_text(
                json.dumps(schema, indent=2, sort_keys=True) + "\n"
            )
        assert golden_path.is_file(), (
            "missing golden schema tests/api/golden/profile.json; generate "
            "it with REPRO_UPDATE_GOLDEN=1"
        )
        assert schema == json.loads(golden_path.read_text()), (
            "the /v1/profile wire format drifted from tests/api/golden/"
            "profile.json; if intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1 and commit the diff"
        )


class TestHealthzProcess:
    def test_health_carries_the_process_section(self, service):
        health = service.health()
        process = health["process"]
        assert process["rss_bytes"] > 0
        assert list(process["gc_collections"]) == ["0", "1", "2"]
        assert isinstance(process["tracemalloc"], bool)
        assert process["uptime_s"] == pytest.approx(
            health["uptime_s"], abs=5.0
        )
        assert health["telemetry"]["profile"] == "/v1/profile"

    def test_health_memory_breakdown_is_a_dict(self, service):
        # Without a store or profiled builds the breakdown may be
        # empty -- but the key must exist with the documented shape.
        memory = service.health()["memory"]
        assert isinstance(memory, dict)
        for layer, sides in memory.items():
            assert set(sides) == {"store_bytes", "build_peak_bytes"}

    def test_trace_endpoint_marks_profiled_spans(self, service):
        document = service.handle("GET", "/v1/trace?last=50").json()
        profiled = [
            node for node in _walk_spans(document["spans"])
            if node.get("profiled")
        ]
        assert profiled, "the profiled serve:request span lost its marker"


def _walk_spans(nodes):
    for node in nodes:
        yield node
        yield from _walk_spans(node.get("children", ()))
