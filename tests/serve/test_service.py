"""ArtifactService semantics: routing, ETags, gzip, errors, tiers."""

import gzip
import json

import pytest

from repro.api import BUILD_COUNTS, StudyConfig, clear_caches
from repro.serve import ArtifactService, etag_matches
from repro.store import ArtifactStore, set_store

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)


@pytest.fixture(autouse=True)
def _no_ambient_store():
    set_store(None)
    yield
    set_store(None)


@pytest.fixture(scope="module")
def service():
    return ArtifactService(CONFIG, store=None)


class TestRouting:
    def test_healthz(self, service):
        response = service.handle("GET", "/healthz")
        assert response.status == 200
        document = response.json()
        assert document["status"] == "ok"
        assert document["artifacts"] >= 30
        assert document["config"]["days"] == CONFIG.days

    def test_listing_names_every_artifact(self, service):
        from repro.api import registry

        response = service.handle("GET", "/v1/artifacts")
        assert response.status == 200
        listed = response.json()
        assert [a["name"] for a in listed["artifacts"]] == registry.names()
        assert "/v1/artifact/<name>" in listed["endpoints"]

    def test_artifact_document_shape(self, service):
        response = service.handle("GET", "/v1/artifact/obs_availability")
        assert response.status == 200
        document = response.json()
        assert document["name"] == "obs_availability"
        assert document["rows"]
        assert document["config"]["sites"] == CONFIG.sites

    def test_unknown_path_404_lists_endpoints(self, service):
        response = service.handle("GET", "/v2/nope")
        assert response.status == 404
        assert "/healthz" in response.json()["endpoints"]

    def test_unknown_artifact_404_did_you_mean(self, service):
        response = service.handle("GET", "/v1/artifact/contrst")
        assert response.status == 404
        assert "contrast" in response.json()["did_you_mean"]

    def test_method_not_allowed(self, service):
        response = service.handle("POST", "/v1/artifact/table1")
        assert response.status == 405
        assert response.json()["allow"] == ["GET", "HEAD"]

    def test_head_carries_length_but_no_body(self, service):
        get = service.handle("GET", "/v1/artifact/obs_availability")
        head = service.handle("HEAD", "/v1/artifact/obs_availability")
        assert head.status == 200
        assert head.body == b""
        assert int(head.header("Content-Length")) == len(get.body)
        assert head.header("ETag") == get.header("ETag")


class TestQueryParameters:
    def test_unknown_parameter_400_did_you_mean(self, service):
        response = service.handle("GET", "/v1/artifact/table1?dayz=3")
        assert response.status == 400
        assert "days" in response.json()["did_you_mean"]

    def test_non_integer_parameter_400(self, service):
        response = service.handle("GET", "/v1/artifact/table1?days=soon")
        assert response.status == 400
        assert "integer" in response.json()["error"]

    def test_unknown_scale_400(self, service):
        response = service.handle("GET", "/v1/artifact/table1?scale=galactic")
        assert response.status == 400
        assert "cli" in response.json()["known"]

    def test_invalid_config_400(self, service):
        response = service.handle("GET", "/v1/artifact/table1?days=0")
        assert response.status == 400

    def test_override_changes_the_served_config(self, service):
        response = service.handle("GET", "/v1/artifact/fig5?sites=90")
        assert response.status == 200
        assert response.json()["config"]["sites"] == 90


class TestRevalidation:
    def test_etag_revalidation_304(self, service):
        first = service.handle("GET", "/v1/artifact/obs_availability")
        etag = first.header("ETag")
        assert etag and etag.startswith('"')
        revalidated = service.handle(
            "GET", "/v1/artifact/obs_availability", {"If-None-Match": etag}
        )
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.header("ETag") == etag

    def test_stale_etag_gets_full_response(self, service):
        response = service.handle(
            "GET", "/v1/artifact/obs_availability", {"If-None-Match": '"stale"'}
        )
        assert response.status == 200
        assert response.body

    def test_matcher_semantics(self):
        assert etag_matches('"abc"', '"abc"')
        assert etag_matches('W/"abc"', '"abc"')  # weak compares equal
        assert etag_matches('"x", "abc"', '"abc"')
        assert etag_matches("*", '"anything"')
        assert not etag_matches('"x"', '"abc"')
        assert not etag_matches(None, '"abc"')

    def test_errors_are_not_cacheable(self, service):
        response = service.handle("GET", "/v1/artifact/contrst")
        assert response.header("ETag") is None


class TestCompression:
    def test_gzip_when_accepted(self, service):
        plain = service.handle("GET", "/v1/artifact/obs_availability")
        zipped = service.handle(
            "GET", "/v1/artifact/obs_availability", {"Accept-Encoding": "gzip"}
        )
        assert zipped.header("Content-Encoding") == "gzip"
        assert len(zipped.body) < len(plain.body)
        assert gzip.decompress(zipped.body) == plain.body
        assert zipped.header("ETag") == plain.header("ETag")  # identity ETag

    def test_identity_when_not_accepted(self, service):
        response = service.handle("GET", "/v1/artifact/obs_availability")
        assert response.header("Content-Encoding") is None
        json.loads(response.body)


class TestContrastEndpoint:
    def test_country_row(self, service):
        response = service.handle("GET", "/v1/contrast/de")
        assert response.status == 200
        document = response.json()
        assert document["country"] == "DE"
        assert document["row"]["country"] == "DE"
        assert 0.0 <= document["row"]["available_share"] <= 1.0
        assert document["source"] == "/v1/artifact/contrast"

    def test_unknown_country_404_with_candidates(self, service):
        response = service.handle("GET", "/v1/contrast/XX")
        assert response.status == 404
        assert "DE" in response.json()["countries"]


class TestDegradation:
    def test_unexpected_exception_becomes_500(self, service, monkeypatch):
        monkeypatch.setattr(
            type(service), "_listing",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        response = service.handle("GET", "/v1/artifacts")
        assert response.status == 500
        assert "RuntimeError" in response.json()["error"]
        assert response.header("ETag") is None  # errors are uncacheable

    def test_corrupt_artifact_entry_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path / "wh")
        service = ArtifactService(CONFIG, store=store)
        first = service.handle("GET", "/v1/artifact/fig6")
        assert first.status == 200
        # Corrupt the persisted document, then serve it cold again.
        [path] = list((tmp_path / "wh").glob("objects/*/artifact.json"))
        path.write_bytes(b"not json at all")
        fresh = ArtifactService(CONFIG, store=store)
        served = fresh.handle("GET", "/v1/artifact/fig6")
        assert served.status == 200
        assert served.json() == first.json()


class TestTiers:
    def test_contrast_is_hot_only_aware(self):
        service = ArtifactService(CONFIG, store=None)
        assert service.handle("GET", "/v1/contrast/DE", hot_only=True) is None
        assert service.handle("GET", "/v1/contrast/DE").status == 200
        hot = service.handle("GET", "/v1/contrast/DE", hot_only=True)
        assert hot is not None and hot.status == 200

    def test_hot_only_misses_then_hits(self):
        clear_caches()
        service = ArtifactService(CONFIG, store=None)
        assert service.handle("GET", "/v1/artifact/fig6", hot_only=True) is None
        full = service.handle("GET", "/v1/artifact/fig6")
        assert full.status == 200
        hot = service.handle("GET", "/v1/artifact/fig6", hot_only=True)
        assert hot is not None and hot.status == 200

    def test_hot_cache_eviction(self):
        service = ArtifactService(CONFIG, store=None, hot_limit=2)
        service.handle("GET", "/v1/artifacts")
        service.handle("GET", "/v1/artifact/fig6")
        service.handle("GET", "/v1/artifact/fig5")
        service.handle("GET", "/v1/artifact/table1")
        assert len(service._hot) == 2

    def test_store_backed_service_serves_without_computing(self, tmp_path):
        store = ArtifactStore(tmp_path / "wh")
        set_store(store)
        try:
            first = ArtifactService(CONFIG, store=store)
            rendered = first.handle("GET", "/v1/artifact/obs_availability")
            assert rendered.status == 200

            clear_caches()
            before = BUILD_COUNTS.copy()
            second = ArtifactService(CONFIG, store=store)
            served = second.handle("GET", "/v1/artifact/obs_availability")
            assert served.status == 200
            assert served.json() == rendered.json()
            assert served.header("ETag") == rendered.header("ETag")
            assert BUILD_COUNTS == before  # document came off disk
        finally:
            set_store(None)

    def test_warm_fills_the_hot_cache(self):
        service = ArtifactService(CONFIG, store=None)
        warmed = service.warm(["fig5", "fig6"])
        assert warmed == 2
        assert service.warmer.done
        assert service.handle(
            "GET", "/v1/artifact/fig5", hot_only=True
        ) is not None
