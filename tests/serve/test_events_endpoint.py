"""``/v1/events``: filters, validation, revalidation, wire schema."""

import json
import os
from pathlib import Path

import pytest

from repro.api import StudyConfig, clear_caches
from repro.sentinel.config import SEVERITIES, severity_rank
from repro.serve import ArtifactService
from repro.store import set_store

CONFIG = StudyConfig(days=6, sites=140, probe_targets=70, parallel=False)

GOLDEN = Path(__file__).parents[1] / "api" / "golden"


@pytest.fixture(autouse=True)
def _no_ambient_store():
    set_store(None)
    yield
    set_store(None)


@pytest.fixture(scope="module")
def service():
    clear_caches()
    return ArtifactService(CONFIG, store=None)


class TestEventsEndpoint:
    def test_document_shape(self, service):
        response = service.handle("GET", "/v1/events")
        assert response.status == 200
        document = response.json()
        assert list(document) == [
            "since", "country", "min_severity", "count", "config",
            "columns", "events", "metadata", "source",
        ]
        assert document["count"] == len(document["events"])
        assert document["source"] == "/v1/artifact/sentinel_events"
        assert document["metadata"]["points"] > 0
        for event in document["events"]:
            assert event["severity"] in SEVERITIES

    def test_since_filters_by_day(self, service):
        everything = service.handle("GET", "/v1/events?since=0").json()
        later = service.handle("GET", "/v1/events?since=4").json()
        assert all(event["day"] >= 4 for event in later["events"])
        assert later["count"] <= everything["count"]

    def test_country_and_severity_filters(self, service):
        scoped = service.handle("GET", "/v1/events?country=de").json()
        assert scoped["country"] == "DE"  # normalized
        assert all(event["scope"] == "DE" for event in scoped["events"])
        critical = service.handle(
            "GET", "/v1/events?min_severity=critical"
        ).json()
        assert all(
            severity_rank(event["severity"]) >= severity_rank("critical")
            for event in critical["events"]
        )

    def test_empty_feed_is_a_valid_200(self, service):
        # An unknown country is silence, not an error: valid data.
        document = service.handle("GET", "/v1/events?country=XX").json()
        assert document["count"] == 0
        assert document["events"] == []

    def test_etag_revalidation_304(self, service):
        first = service.handle("GET", "/v1/events?since=0")
        etag = first.header("ETag")
        assert etag
        again = service.handle(
            "GET", "/v1/events?since=0", headers={"if-none-match": etag}
        )
        assert again.status == 304
        assert again.body == b""

    def test_endpoint_is_listed_and_labeled(self, service):
        from repro.serve.service import ENDPOINTS, endpoint_label

        assert "/v1/events" in ENDPOINTS
        assert endpoint_label("/v1/events") == "/v1/events"
        assert endpoint_label("/v1/events/") == "/v1/events"


class TestEventsValidation:
    @pytest.mark.parametrize(
        "query",
        ["since=nope", "since=1.5", "since=-1", "min_severity=bogus",
         "country=", "sinse=3"],
    )
    def test_bad_parameters_are_400_json_not_500(self, service, query):
        response = service.handle("GET", f"/v1/events?{query}")
        assert response.status == 400
        assert "error" in response.json()

    def test_unknown_severity_lists_known(self, service):
        response = service.handle("GET", "/v1/events?min_severity=worse")
        assert response.json()["known"] == list(SEVERITIES)

    def test_scale_overrides_pass_through(self, service):
        response = service.handle("GET", "/v1/events?since=0&days=5")
        assert response.status == 200
        assert response.json()["config"]["days"] == 5


class TestEventsWireSchema:
    def test_wire_schema_matches_golden(self, service):
        """The envelope's key order and JSON types, pinned."""
        document = service.handle("GET", "/v1/events").json()

        def type_of(value):
            if value is None:
                return "null"
            if isinstance(value, bool):
                return "bool"
            if isinstance(value, int):
                return "int"
            if isinstance(value, float):
                return "float"
            if isinstance(value, str):
                return "str"
            if isinstance(value, list):
                return "array"
            if isinstance(value, dict):
                return "object"
            raise TypeError(f"not a JSON value: {value!r}")  # pragma: no cover

        event_fields: dict[str, set] = {}
        for event in document["events"]:
            for key, value in event.items():
                event_fields.setdefault(key, set()).add(type_of(value))
        schema = {
            "envelope": {key: type_of(value) for key, value in document.items()},
            "key_order": list(document),
            "event_fields": {
                key: sorted(types) for key, types in sorted(event_fields.items())
            },
            "metadata_keys": sorted(document["metadata"]),
        }
        golden_path = GOLDEN / "events.json"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.mkdir(exist_ok=True)
            golden_path.write_text(
                json.dumps(schema, indent=2, sort_keys=True) + "\n"
            )
        assert golden_path.is_file(), (
            "missing golden schema tests/api/golden/events.json; generate "
            "it with REPRO_UPDATE_GOLDEN=1"
        )
        assert schema == json.loads(golden_path.read_text()), (
            "the /v1/events wire format drifted from tests/api/golden/"
            "events.json; if intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1 and commit the diff"
        )


class TestHealthzStoreGauges:
    def test_health_includes_refreshed_store_gauges(self, tmp_path):
        store = set_store(tmp_path / "warehouse")
        try:
            service = ArtifactService(CONFIG, store=store)
            telemetry = service.health()["telemetry"]
            gauges = telemetry["store_gauges"]
            assert gauges is not None
            assert gauges["entries"] >= 0
            assert gauges["bytes"] >= 0
        finally:
            set_store(None)

    def test_health_without_store_reports_none(self, service):
        assert service.health()["telemetry"]["store_gauges"] is None
