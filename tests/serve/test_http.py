"""The asyncio front end, exercised over real sockets.

Each test runs a scenario coroutine against a server bound to an
ephemeral port (no pytest-asyncio needed -- ``asyncio.run`` per test).
The client is raw streams: write HTTP/1.1 bytes, parse the head, read
``Content-Length`` bytes, so keep-alive and 304-has-no-body semantics
are verified at the protocol level rather than through a forgiving
client library.
"""

import asyncio
import json

from repro.api import StudyConfig
from repro.serve import ArtifactService, start_server

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)


def run(scenario):
    """Start a warm=False server, run the scenario coroutine, tear down."""

    async def main():
        service = ArtifactService(CONFIG, store=None)
        server = await start_server(service, "127.0.0.1", 0, warm=False)
        port = server.sockets[0].getsockname()[1]
        try:
            return await asyncio.wait_for(scenario(port, service), timeout=60)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(main())


async def request(reader, writer, target, extra_headers=(), method="GET"):
    """One request on an existing connection; returns (status, headers, body)."""
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    lines.extend(extra_headers)
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
    await writer.drain()
    head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
    status = int(head.split(" ", 2)[1])
    headers = {}
    for line in head.split("\r\n")[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    # HEAD responses advertise the length but carry no payload bytes.
    if method == "HEAD":
        length = 0
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


class TestHttpServer:
    def test_healthz_and_artifact_over_keepalive(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, headers, body = await request(reader, writer, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            # Same connection, second request: keep-alive works.
            status, headers, body = await request(
                reader, writer, "/v1/artifact/obs_availability"
            )
            assert status == 200
            assert headers["content-type"].startswith("application/json")
            document = json.loads(body)
            assert document["name"] == "obs_availability"
            etag = headers["etag"]
            # Third request revalidates: 304, no body, connection stays up.
            status, headers, body = await request(
                reader,
                writer,
                "/v1/artifact/obs_availability",
                [f"If-None-Match: {etag}"],
            )
            assert status == 304
            assert body == b""
            assert headers["etag"] == etag
            status, _, _ = await request(reader, writer, "/healthz")
            assert status == 200
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_gzip_negotiation_on_the_wire(self):
        import gzip as gzip_module

        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, headers, body = await request(
                reader,
                writer,
                "/v1/artifact/obs_availability",
                ["Accept-Encoding: gzip, br"],
            )
            assert status == 200
            assert headers["content-encoding"] == "gzip"
            assert headers["vary"] == "Accept-Encoding"
            json.loads(gzip_module.decompress(body))
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_errors_and_malformed_requests(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, _, body = await request(reader, writer, "/v1/artifact/contrst")
            assert status == 404
            assert "contrast" in json.loads(body)["did_you_mean"]
            status, _, body = await request(
                reader, writer, "/v1/artifact/table1?dayz=1"
            )
            assert status == 400
            writer.close()
            await writer.wait_closed()

            # A garbage request line gets a 400 and a closed connection.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"NOT-HTTP\r\n\r\n")
            await writer.drain()
            head = (await reader.readuntil(b"\r\n\r\n")).decode()
            assert " 400 " in head.splitlines()[0]
            assert await reader.read() == b""  # server closed it
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_request_body_is_drained_on_keepalive(self):
        """A 405'd POST with a body must not desync the next request."""

        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = b'{"ignored": true}'
            writer.write(
                b"POST /v1/artifact/contrast HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
            assert " 405 " in head.splitlines()[0]
            length = int(
                [l for l in head.split("\r\n") if l.lower().startswith("content-length")][0]
                .split(":")[1]
            )
            await reader.readexactly(length)
            # The body bytes were drained: the connection parses the
            # next request cleanly instead of reading `{"ignored"...`
            # as a request line.
            status, _, payload = await request(reader, writer, "/healthz")
            assert status == 200
            assert json.loads(payload)["status"] == "ok"
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_chunked_request_body_rejected(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            await writer.drain()
            head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
            assert " 400 " in head.splitlines()[0]
            assert await reader.read() == b""  # connection closed
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_connection_close_honoured(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, _, _ = await request(
                reader, writer, "/healthz", ["Connection: close"]
            )
            assert status == 200
            assert await reader.read() == b""  # EOF: server hung up
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_head_request_on_the_wire(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, headers, body = await request(
                reader, writer, "/healthz", method="HEAD"
            )
            # our client reads content-length bytes; HEAD sends none, so
            # the next request must still parse cleanly
            assert status == 200
            assert body == b""  # no payload followed
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_truncated_request_body_closes_quietly(self):
        """A client that dies mid-body gets a clean close, not a 4xx/5xx.

        The promised ``Content-Length`` never arrives
        (:class:`asyncio.IncompleteReadError` on the drain read); the
        server must not answer a half request -- no response bytes at
        all -- and the connection after it must be unaffected.
        """

        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\nonly this"
            )
            await writer.drain()
            writer.write_eof()  # body stops 55 bytes short
            assert await reader.read() == b""  # quiet close, zero bytes sent
            writer.close()
            await writer.wait_closed()

            # The listener survives: a fresh connection still serves.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, _headers, _body = await request(reader, writer, "/healthz")
            assert status == 200
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_connect_and_leave_closes_quietly(self):
        """A connection that sends nothing gets EOF back, not an error."""

        async def scenario(port, service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write_eof()  # health checkers and port scanners do this
            assert await reader.read() == b""
            writer.close()
            await writer.wait_closed()

        run(scenario)

    def test_warmer_reports_through_healthz(self):
        async def scenario(port, service):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, service.warm, ["fig5", "fig6"])
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            status, _, body = await request(reader, writer, "/healthz")
            assert status == 200
            document = json.loads(body)
            assert document["warmer"]["done"] is True
            assert document["warmer"]["warmed"] == 2
            writer.close()
            await writer.wait_closed()

        run(scenario)
