"""Tests for the traffic generator: the paper's causal structure must emerge."""

import pytest

from repro.flowmon.monitor import FlowScope
from repro.traffic.apps import build_service_catalog, catalog_by_name
from repro.traffic.generate import ResidenceDataset, TrafficGenerator
from repro.traffic.residences import residences_by_name
from repro.traffic.universe import ServiceUniverse
from repro.util.timeutil import day_index


@pytest.fixture(scope="module")
def universe() -> ServiceUniverse:
    return ServiceUniverse(build_service_catalog())


@pytest.fixture(scope="module")
def dataset_a(universe) -> ResidenceDataset:
    profile = residences_by_name()["A"]
    return TrafficGenerator(universe, seed=7).generate(profile, num_days=14)


@pytest.fixture(scope="module")
def dataset_c(universe) -> ResidenceDataset:
    profile = residences_by_name()["C"]
    return TrafficGenerator(universe, seed=7).generate(profile, num_days=14)


def byte_fraction_v6(records) -> float:
    total = sum(r.total_bytes for r in records)
    v6 = sum(r.total_bytes for r in records if r.key.is_v6)
    return v6 / total if total else 0.0


class TestGeneratorBasics:
    def test_invalid_days(self, universe):
        profile = residences_by_name()["A"]
        with pytest.raises(ValueError):
            TrafficGenerator(universe).generate(profile, num_days=0)

    def test_deterministic(self, universe):
        profile = residences_by_name()["E"]
        d1 = TrafficGenerator(universe, seed=3).generate(profile, num_days=3)
        d2 = TrafficGenerator(universe, seed=3).generate(profile, num_days=3)
        r1 = [(r.start_time, r.total_bytes) for r in d1.external_records()]
        r2 = [(r.start_time, r.total_bytes) for r in d2.external_records()]
        assert r1 == r2

    def test_seed_changes_traffic(self, universe):
        profile = residences_by_name()["E"]
        d1 = TrafficGenerator(universe, seed=3).generate(profile, num_days=3)
        d2 = TrafficGenerator(universe, seed=4).generate(profile, num_days=3)
        assert len(d1.external_records()) != len(d2.external_records()) or (
            byte_fraction_v6(d1.external_records())
            != byte_fraction_v6(d2.external_records())
        )

    def test_all_days_covered(self, dataset_a):
        days = {day_index(r.start_time) for r in dataset_a.external_records()}
        assert days.issuperset(set(range(13)))  # last day may spill over

    def test_internal_and_external_present(self, dataset_a):
        assert dataset_a.external_records()
        assert dataset_a.internal_records()

    def test_flows_attributable_to_ases(self, dataset_a):
        """Every external peer must resolve through the BGP table."""
        monitor = dataset_a.monitor
        routing = dataset_a.universe.routing
        for record in dataset_a.external_records()[:500]:
            peer = monitor.external_peer(record)
            assert peer is not None
            assert routing.origin_of(peer) is not None


class TestEmergentProtocolChoice:
    def test_dual_stack_residence_mostly_v6_to_v6_services(self, dataset_a):
        """Flows to a fully-IPv6 service from capable devices ride IPv6."""
        by_name = catalog_by_name(dataset_a.universe.catalog)
        google = by_name["Google"]
        routing = dataset_a.universe.routing
        monitor = dataset_a.monitor
        google_records = [
            r
            for r in dataset_a.external_records()
            if routing.origin_of(monitor.external_peer(r)) == google.asn
        ]
        assert google_records
        v6 = sum(1 for r in google_records if r.key.is_v6)
        assert v6 / len(google_records) > 0.6

    def test_ipv4_only_service_never_v6(self, dataset_a):
        by_name = catalog_by_name(dataset_a.universe.catalog)
        laggard_asns = {by_name[n].asn for n in ("Zoom", "Twitch", "GitHub", "USC Campus")}
        routing = dataset_a.universe.routing
        monitor = dataset_a.monitor
        for record in dataset_a.external_records():
            peer = monitor.external_peer(record)
            if routing.origin_of(peer) in laggard_asns:
                assert not record.key.is_v6

    def test_broken_devices_depress_v6(self, dataset_a, dataset_c):
        """Residence C (broken CPE) shows far less IPv6 than A."""
        frac_a = byte_fraction_v6(dataset_a.external_records())
        frac_c = byte_fraction_v6(dataset_c.external_records())
        assert frac_a > 0.45
        assert frac_c < 0.30
        assert frac_a > frac_c + 0.2

    def test_happy_eyeballs_inflates_v4_flows(self, dataset_a):
        """Byte fraction exceeds flow fraction at the v6-heavy residence
        (section 3.2: extra IPv4 SYNs make flows overstate IPv4)."""
        records = dataset_a.external_records()
        bytes_frac = byte_fraction_v6(records)
        flow_frac = sum(1 for r in records if r.key.is_v6) / len(records)
        assert bytes_frac > flow_frac

    def test_vacation_gap_visible(self, universe):
        """Residence A's spring break produces near-zero human traffic."""
        profile = residences_by_name()["A"]
        dataset = TrafficGenerator(universe, seed=5).generate(profile, num_days=140)
        on_break = [
            r
            for r in dataset.external_records()
            if 135 <= day_index(r.start_time) <= 138
        ]
        before_break = [
            r
            for r in dataset.external_records()
            if 128 <= day_index(r.start_time) <= 131
        ]
        assert len(on_break) < len(before_break) / 3
        # What remains during the break is background -> IPv4-leaning.
        assert byte_fraction_v6(on_break) < byte_fraction_v6(before_break)


class TestInternalTraffic:
    def test_internal_stays_on_lan(self, dataset_a):
        config = dataset_a.monitor.config
        for record in dataset_a.internal_records():
            assert config.is_local(record.key.src)
            assert config.is_local(record.key.dst)

    def test_d_internal_exceeds_external_flows(self, universe):
        """Residence D: NAS syncs dominate; internal flows > external."""
        profile = residences_by_name()["D"]
        dataset = TrafficGenerator(universe, seed=7).generate(profile, num_days=14)
        assert len(dataset.internal_records()) > len(dataset.external_records())

    def test_d_internal_is_v6_heavy(self, universe):
        profile = residences_by_name()["D"]
        dataset = TrafficGenerator(universe, seed=7).generate(profile, num_days=14)
        internal = dataset.internal_records()
        v6 = sum(1 for r in internal if r.key.is_v6)
        assert v6 / len(internal) > 0.8

    def test_no_transit_flows(self, dataset_a):
        assert not dataset_a.monitor.records(scope=FlowScope.TRANSIT)


class TestIcmp:
    def test_icmp_probes_present_over_long_run(self, universe):
        profile = residences_by_name()["A"]
        dataset = TrafficGenerator(universe, seed=11).generate(profile, num_days=10)
        from repro.flowmon.conntrack import Protocol

        icmp = [
            r
            for r in dataset.monitor.records()
            if r.key.protocol is Protocol.ICMP
        ]
        assert icmp, "expected at least one ICMP probe in 10 days"
        assert all(r.key.icmp is not None for r in icmp)
