"""Tests for the activity model and device fleet."""

import pytest

from repro.net.addr import IpAddress
from repro.traffic.activity import (
    DEFAULT_HOUR_CURVE,
    ActivityModel,
    OccupancyPattern,
    VacationWindow,
)
from repro.traffic.devices import Device, DeviceKind
from repro.traffic.residences import build_paper_residences
from repro.util.rng import RngStream
from repro.util.timeutil import HOUR, hour_of_day


class TestVacationWindow:
    def test_contains(self):
        window = VacationWindow(10, 12)
        assert window.contains(10) and window.contains(12)
        assert not window.contains(9) and not window.contains(13)

    def test_invalid(self):
        with pytest.raises(ValueError):
            VacationWindow(5, 4)


class TestOccupancyPattern:
    def test_default_curve_peaks_in_evening(self):
        curve = DEFAULT_HOUR_CURVE
        assert max(curve) == curve[22]  # 22:00-23:00 rise to midnight
        assert min(curve) == curve[4]  # deepest trough before dawn
        # Secondary mid-morning bump: 09:00 beats early afternoon.
        assert curve[9] > curve[14]

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyPattern(hour_curve=(1.0,) * 23)
        with pytest.raises(ValueError):
            OccupancyPattern(weekend_factor=0)
        with pytest.raises(ValueError):
            OccupancyPattern(day_variability=-1)


class TestActivityModel:
    def make(self, **kwargs) -> ActivityModel:
        defaults = dict(daily_sessions=50.0, background_sessions=10.0)
        defaults.update(kwargs)
        return ActivityModel(**defaults)

    def test_vacation_suppresses_human_traffic_only(self):
        model = self.make(vacations=(VacationWindow(3, 5),))
        rng = RngStream(1)
        assert model.human_session_times(4, rng) == []
        assert len(model.background_session_times(4, rng)) > 0

    def test_sessions_sorted_and_in_day(self):
        model = self.make()
        rng = RngStream(2)
        times = model.human_session_times(7, rng)
        assert times == sorted(times)
        assert all(7 * 24 * HOUR <= t < 8 * 24 * HOUR for t in times)

    def test_evening_heavier_than_predawn(self):
        model = self.make(daily_sessions=200.0)
        rng = RngStream(3)
        evening, predawn = 0, 0
        for day in range(30):
            for t in model.human_session_times(day, rng):
                hour = hour_of_day(t)
                if 18 <= hour < 24:
                    evening += 1
                elif 2 <= hour < 6:
                    predawn += 1
        assert evening > predawn * 4

    def test_day_multiplier_varies(self):
        model = self.make(pattern=OccupancyPattern(day_variability=0.5))
        rng = RngStream(4)
        multipliers = {round(model.day_multiplier(d, rng), 6) for d in range(20)}
        assert len(multipliers) > 10

    def test_zero_variability_is_constant(self):
        model = ActivityModel(
            daily_sessions=10, background_sessions=0,
            pattern=OccupancyPattern(day_variability=0.0),
        )
        rng = RngStream(5)
        assert model.day_multiplier(0, rng) == 1.0

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            ActivityModel(daily_sessions=-1, background_sessions=0)


class TestDevice:
    def test_validation(self):
        v4 = IpAddress.parse("192.168.1.10")
        v6 = IpAddress.parse("2001:db8::10")
        with pytest.raises(ValueError):
            Device("d", DeviceKind.PC, v6, None)  # v6 where v4 expected
        with pytest.raises(ValueError):
            Device("d", DeviceKind.PC, v4, v4)  # v4 where v6 expected
        with pytest.raises(ValueError):
            Device("d", DeviceKind.PC, v4, v6, activity_weight=-1)

    def test_capability(self):
        v4 = IpAddress.parse("192.168.1.10")
        v6 = IpAddress.parse("2001:db8::10")
        dual = Device("d", DeviceKind.PC, v4, v6)
        legacy = Device("l", DeviceKind.TV, v4, None)
        assert dual.ipv6_capable and not legacy.ipv6_capable
        assert legacy.address(v6.family) is None
        assert dual.address(v6.family) == v6

    def test_interactive_kinds(self):
        assert DeviceKind.PC.interactive
        assert DeviceKind.PHONE.interactive
        assert not DeviceKind.NAS.interactive
        assert not DeviceKind.IOT.interactive


class TestResidenceProfiles:
    def test_five_residences(self):
        profiles = build_paper_residences()
        assert [p.name for p in profiles] == ["A", "B", "C", "D", "E"]

    def test_b_is_tunneled(self):
        profiles = {p.name: p for p in build_paper_residences()}
        assert not profiles["B"].native_ipv6
        assert profiles["B"].isp == "Frontier"
        assert profiles["B"].lan_v6 is not None  # tunnel still provides v6

    def test_c_has_broken_devices(self):
        profiles = {p.name: p for p in build_paper_residences()}
        devices = profiles["C"].build_devices()
        broken = [d for d in devices if not d.ipv6_capable]
        assert len(broken) >= len(devices) // 2

    def test_a_has_spring_break(self):
        profiles = {p.name: p for p in build_paper_residences()}
        model = profiles["A"].activity_model()
        assert model.is_vacation(136)
        assert not model.is_vacation(120)

    def test_d_e_light_traffic(self):
        profiles = {p.name: p for p in build_paper_residences()}
        heavy = min(profiles[n].daily_sessions for n in "ABC")
        light = max(profiles[n].daily_sessions for n in "DE")
        assert light < heavy / 3

    def test_devices_have_distinct_addresses(self):
        for profile in build_paper_residences():
            devices = profile.build_devices()
            v4s = [d.v4 for d in devices]
            assert len(v4s) == len(set(v4s))
            v6s = [d.v6 for d in devices if d.v6 is not None]
            assert len(v6s) == len(set(v6s))

    def test_diets_reference_known_services(self):
        from repro.traffic.apps import catalog_by_name

        known = set(catalog_by_name())
        for profile in build_paper_residences():
            unknown = set(profile.service_weights) - known
            assert not unknown, f"{profile.name}: {unknown}"
