"""Tests for service profiles and the service universe."""

import pytest

from repro.net.asn import AsCategory
from repro.traffic.apps import (
    SHAPES,
    ApplicationKind,
    ServiceProfile,
    TrafficShape,
    build_service_catalog,
    catalog_by_name,
)
from repro.traffic.universe import ServiceUniverse
from repro.util.rng import RngStream


class TestTrafficShape:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficShape(flows_per_session=0, median_flow_bytes=100)
        with pytest.raises(ValueError):
            TrafficShape(flows_per_session=1, median_flow_bytes=0)
        with pytest.raises(ValueError):
            TrafficShape(flows_per_session=1, median_flow_bytes=10, heavy_flow_prob=2)
        with pytest.raises(ValueError):
            TrafficShape(flows_per_session=1, median_flow_bytes=10, udp_fraction=-1)

    def test_draw_plain(self):
        shape = TrafficShape(flows_per_session=5, median_flow_bytes=10_000)
        rng = RngStream(1)
        draws = [shape.draw_flow_bytes(rng) for _ in range(100)]
        assert all(d >= 1 for d in draws)

    def test_heavy_tail_raises_mean(self):
        rng1, rng2 = RngStream(2), RngStream(2)
        light = TrafficShape(flows_per_session=1, median_flow_bytes=10_000)
        heavy = TrafficShape(
            flows_per_session=1, median_flow_bytes=10_000,
            heavy_flow_bytes=10_000_000, heavy_flow_prob=0.5,
        )
        light_mean = sum(light.draw_flow_bytes(rng1) for _ in range(300)) / 300
        heavy_mean = sum(heavy.draw_flow_bytes(rng2) for _ in range(300)) / 300
        assert heavy_mean > light_mean * 10

    def test_all_kinds_have_shapes(self):
        assert set(SHAPES) == set(ApplicationKind)


class TestServiceProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceProfile(
                "X", 1, "X", "x.com", AsCategory.OTHER, ApplicationKind.WEB, 1.5
            )
        with pytest.raises(ValueError):
            ServiceProfile(
                "X", 0, "X", "x.com", AsCategory.OTHER, ApplicationKind.WEB, 0.5
            )
        with pytest.raises(ValueError):
            ServiceProfile(
                "X", 1, "X", "x.com", AsCategory.OTHER, ApplicationKind.WEB, 0.5,
                num_servers=0,
            )


class TestCatalog:
    def test_catalog_nonempty_and_unique(self):
        catalog = build_service_catalog()
        assert len(catalog) >= 35
        names = [s.name for s in catalog]
        assert len(names) == len(set(names))

    def test_paper_laggards_are_ipv4_only(self):
        by_name = catalog_by_name()
        for laggard in ("Zoom", "Twitch", "GitHub", "USC Campus", "WordPress"):
            assert by_name[laggard].ipv6_support == 0.0, laggard

    def test_web_social_lead_isps_lag(self):
        """Figure 4's headline: Web/Social medians > 0.9, ISPs <= 0.2."""
        catalog = build_service_catalog()
        web = [s for s in catalog if s.category is AsCategory.WEB_SOCIAL and s.name != "TikTok"]
        isps = [s for s in catalog if s.category is AsCategory.ISP]
        assert all(s.ipv6_support >= 0.9 for s in web)
        assert all(s.ipv6_support <= 0.2 for s in isps)

    def test_every_category_represented(self):
        categories = {s.category for s in build_service_catalog()}
        assert categories == set(AsCategory)

    def test_background_services_exist(self):
        catalog = build_service_catalog()
        assert any(not s.human_driven for s in catalog)


class TestServiceUniverse:
    def test_build(self):
        universe = ServiceUniverse(build_service_catalog())
        assert len(universe) >= 35
        assert len(universe.registry) >= 35

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ServiceUniverse([])

    def test_servers_routable_to_right_asn(self):
        universe = ServiceUniverse(build_service_catalog())
        for service in universe.catalog:
            for server in universe.servers_of(service):
                assert universe.routing.origin_of(server.v4) == service.asn
                if server.v6 is not None:
                    assert universe.routing.origin_of(server.v6) == service.asn

    def test_dual_stack_share_matches_support(self):
        universe = ServiceUniverse(build_service_catalog())
        for service in universe.catalog:
            servers = universe.servers_of(service)
            dual = sum(1 for s in servers if s.dual_stack)
            assert dual == round(service.ipv6_support * service.num_servers)

    def test_ipv4_only_service_has_no_aaaa_servers(self):
        universe = ServiceUniverse(build_service_catalog())
        zoom = catalog_by_name(universe.catalog)["Zoom"]
        assert all(not s.dual_stack for s in universe.servers_of(zoom))

    def test_rdns_registered(self):
        universe = ServiceUniverse(build_service_catalog())
        service = universe.catalog[0]
        server = universe.servers_of(service)[0]
        hostname = universe.rdns.lookup(server.v4)
        assert hostname is not None
        assert hostname.endswith(service.domain)

    def test_addresses_unique_across_services(self):
        universe = ServiceUniverse(build_service_catalog())
        seen = set()
        for service in universe.catalog:
            for server in universe.servers_of(service):
                assert server.v4 not in seen
                seen.add(server.v4)
                if server.v6 is not None:
                    assert server.v6 not in seen
                    seen.add(server.v6)
