"""Parallel generation must be indistinguishable from sequential.

Determinism rests on two properties the tests below pin down: every
residence draws from its own seeded RNG substream (so generation order
cannot matter), and each residence allocates source ports from its own
range (so a worker process starts from the same state as the sequential
path).
"""

import numpy as np
import pytest

from repro.traffic.apps import build_service_catalog
from repro.traffic.generate import TrafficGenerator, _generate_residence
from repro.traffic.residences import build_paper_residences
from repro.traffic.universe import ServiceUniverse

DAYS = 5


@pytest.fixture(scope="module")
def universe():
    return ServiceUniverse(build_service_catalog())


def _fingerprint(dataset):
    """Every observable column of the generated frame, plus peer strings."""
    frame = dataset.frame()
    return (
        frame.data.tobytes(),
        tuple(str(p) for p in frame.peers),
        frame.peer_asn.tobytes(),
        frame.peer_domain.tobytes(),
        frame.domains,
    )


class TestParallelDeterminism:
    def test_parallel_equals_sequential(self, universe):
        profiles = build_paper_residences()
        sequential = TrafficGenerator(universe, seed=5).generate_all(
            profiles, num_days=DAYS, parallel=False
        )
        parallel = TrafficGenerator(universe, seed=5).generate_all(
            profiles, num_days=DAYS, parallel=2
        )
        assert list(sequential) == list(parallel)
        for name in sequential:
            assert _fingerprint(sequential[name]) == _fingerprint(parallel[name])

    def test_worker_entry_matches_inline(self, universe):
        profile = build_paper_residences()[0]
        inline = TrafficGenerator(universe, seed=5).generate(profile, num_days=DAYS)
        name, monitor, devices = _generate_residence(
            (universe.catalog, 5, None, profile, DAYS)
        )
        assert name == profile.name
        assert len(devices) == len(inline.devices)
        assert monitor.records_seen == inline.monitor.records_seen
        got = monitor.frame()
        want = inline.monitor.frame()
        assert got.data.tobytes() == want.data.tobytes()
        assert tuple(str(p) for p in got.peers) == tuple(
            str(p) for p in want.peers
        )

    def test_generation_order_independent(self, universe):
        """A residence generated alone equals the same residence generated
        after others (per-residence RNG substreams + port ranges)."""
        profiles = build_paper_residences()
        all_datasets = TrafficGenerator(universe, seed=5).generate_all(
            profiles, num_days=DAYS, parallel=False
        )
        last = profiles[-1]
        alone = TrafficGenerator(universe, seed=5).generate(last, num_days=DAYS)
        assert _fingerprint(alone) == _fingerprint(all_datasets[last.name])

    def test_parallel_datasets_share_parent_universe(self, universe):
        profiles = build_paper_residences()[:2]
        datasets = TrafficGenerator(universe, seed=5).generate_all(
            profiles, num_days=DAYS, parallel=2
        )
        for dataset in datasets.values():
            assert dataset.universe is universe


class TestPoolFallbackWarning:
    def test_broken_pool_warns_once_and_falls_back(self, universe, monkeypatch):
        """A dead pool degrades to the sequential path with one warning."""
        import warnings

        from concurrent.futures.process import BrokenProcessPool

        import repro.util.procpool as procpool_module
        from repro.util.procpool import reset_pool_fallback_warnings

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise BrokenProcessPool("no pool in this sandbox")

        monkeypatch.setattr(procpool_module, "ProcessPoolExecutor", ExplodingPool)
        reset_pool_fallback_warnings()
        profiles = build_paper_residences()[:2]
        with pytest.warns(RuntimeWarning, match="traffic generation"):
            datasets = TrafficGenerator(universe, seed=5).generate_all(
                profiles, num_days=2, parallel=2
            )
        assert list(datasets) == [p.name for p in profiles]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second fallback stays quiet
            TrafficGenerator(universe, seed=5).generate_all(
                profiles, num_days=2, parallel=2
            )
        reset_pool_fallback_warnings()

    def test_unrelated_oserror_propagates(self, universe, monkeypatch):
        """OSErrors that are not pool-creation failures are not swallowed."""
        import repro.util.procpool as procpool_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError(9999, "not a pool problem")

        monkeypatch.setattr(procpool_module, "ProcessPoolExecutor", ExplodingPool)
        with pytest.raises(OSError, match="not a pool problem"):
            TrafficGenerator(universe, seed=5).generate_all(
                build_paper_residences()[:2], num_days=2, parallel=2
            )


class TestWorkerResolution:
    def test_resolve_workers(self):
        resolve = TrafficGenerator._resolve_workers
        assert resolve(False, 5) == 1
        assert resolve(0, 5) == 1
        assert resolve(1, 5) == 1
        assert resolve(3, 5) == 3
        assert resolve(8, 2) == 2  # never more workers than residences
        assert resolve(None, 5) >= 1
        assert resolve(True, 5) >= 1

    def test_frames_detached_from_workers_are_usable(self, universe):
        """Analysis runs against worker-built datasets (pickle round-trip)."""
        from repro.core.client import compute_residence_stats

        profiles = build_paper_residences()[:2]
        datasets = TrafficGenerator(universe, seed=5).generate_all(
            profiles, num_days=DAYS, parallel=2
        )
        for dataset in datasets.values():
            stats = compute_residence_stats(dataset)
            assert stats.external.total_flows == len(dataset.external_records())
            assert np.isfinite(stats.external.byte_fraction_overall)
