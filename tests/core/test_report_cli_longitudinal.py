"""Tests for the report renderers, the CLI, and longitudinal snapshots."""

import pytest

from repro.__main__ import build_parser, main
from repro.core import report
from repro.core.longitudinal import (
    Snapshot,
    adoption_change,
    compare_snapshots,
    run_snapshots,
)
from repro.core.readiness import CensusBreakdown
from repro.datasets import build_census, build_residence_study


@pytest.fixture(scope="module")
def study():
    return build_residence_study(num_days=7, seed=3, residences=("A", "E"))


@pytest.fixture(scope="module")
def census():
    return build_census(num_sites=300, seed=3)


class TestReportRenderers:
    def test_table1(self, study):
        text = report.render_table1(study)
        assert "Table 1" in text
        assert "external" in text and "internal" in text
        assert text.count("\n") >= 5  # header + 2 residences x 2 scopes

    def test_fig5(self, census):
        text = report.render_fig5(census)
        for label in ("IPv4-only", "IPv6-partial", "IPv6-full", "NXDOMAIN"):
            assert label in text

    def test_fig6(self, census):
        text = report.render_fig6(census)
        assert "top N" in text
        assert "%" in text

    def test_dependencies(self, census):
        text = report.render_dependencies(census)
        assert "IPv6-partial sites" in text
        assert "span" in text

    def test_table3(self, census):
        text = report.render_table3(census)
        assert "Overall" in text
        assert "Cloudflare" in text

    def test_table2(self, census):
        text = report.render_table2(census, min_domains=1)
        assert "policy" in text
        assert "default-on" in text

    def test_full_report(self, study, census):
        text = report.full_report(study, census)
        for marker in ("Table 1", "Figure 5", "Figure 6", "Table 3", "Table 2"):
            assert marker in text


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--days", "3"])
        assert args.artifacts == ["table1"]
        assert args.days == 3

    def test_parser_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["nonsense"])

    def test_main_single_artifact(self, capsys):
        code = main(["fig5", "--sites", "200", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_main_deduplicates(self, capsys):
        code = main(["fig6", "fig6", "--sites", "200", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Figure 6") == 1

    def test_main_traffic_artifact(self, capsys):
        code = main(["table1", "--days", "3", "--seed", "5"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestLongitudinal:
    @pytest.fixture(scope="class")
    def snapshots(self):
        return run_snapshots(
            labels=("t0", "t1"), num_sites=250, seed=9, drift_per_round=0.05
        )

    def test_rounds_built(self, snapshots):
        assert [s.label for s in snapshots] == ["t0", "t1"]
        for snapshot in snapshots:
            snapshot.breakdown.check_invariants()

    def test_adoption_moves_forward(self, snapshots):
        assert adoption_change(snapshots) >= 0.0

    def test_same_population_each_round(self, snapshots):
        first, last = snapshots[0].breakdown, snapshots[-1].breakdown
        assert first.total == last.total
        assert first.nxdomain == last.nxdomain  # same dead sites

    def test_compare_renders_change_column(self, snapshots):
        text = compare_snapshots(snapshots)
        assert "Change (pp)" in text
        assert "IPv6-full" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_snapshots(labels=("only",), num_sites=50, drift_per_round=-0.1)
        with pytest.raises(ValueError):
            compare_snapshots([Snapshot("x", CensusBreakdown(total=0))])
        with pytest.raises(ValueError):
            adoption_change([Snapshot("x", CensusBreakdown(total=0))])
