"""Tests for the extreme-day attribution analysis (paper section 3.2)."""

import pytest

from repro.core import heavy_hitter_days
from repro.datasets import build_residence_study
from repro.traffic.apps import catalog_by_name


@pytest.fixture(scope="module")
def dataset():
    study = build_residence_study(num_days=60, seed=23, residences=("A",))
    return study.dataset("A")


class TestHeavyHitterDays:
    def test_tails_selected(self, dataset):
        low, high = heavy_hitter_days(dataset)
        assert low and high
        worst_low = max(d.fraction_v6 for d in low)
        best_high = min(d.fraction_v6 for d in high)
        assert worst_low < best_high

    def test_quantile_validation(self, dataset):
        with pytest.raises(ValueError):
            heavy_hitter_days(dataset, low_quantile=0.9, high_quantile=0.1)
        with pytest.raises(ValueError):
            heavy_hitter_days(dataset, low_quantile=-0.1, high_quantile=0.9)

    def test_dominant_ases_ranked(self, dataset):
        low, high = heavy_hitter_days(dataset, top_ases=3)
        for day in low + high:
            volumes = [volume for _, volume in day.dominant_ases]
            assert volumes == sorted(volumes, reverse=True)
            assert len(day.dominant_ases) <= 3
            assert day.total_bytes >= sum(volumes)

    def test_paper_attribution_pattern(self, dataset):
        """High-IPv6 days are driven by IPv6-heavy bulk services (Valve,
        Netflix streaming, Apple); low days by IPv4-only ones (Twitch,
        Zoom) -- the paper's section 3.2 observation.  The pattern need
        not hold on *every* extreme day (nor does it in the paper), so we
        assert it holds on a clear majority."""
        by_name = catalog_by_name()
        v6_bulk = {by_name[n].asn for n in
                   ("Valve/Steam", "Netflix Streaming", "Apple Services")}
        v4_bulk = {by_name[n].asn for n in ("Twitch", "Zoom")}
        low, high = heavy_hitter_days(dataset)

        high_hits = sum(
            1 for day in high
            if day.dominant_ases and any(a in v6_bulk for a, _ in day.dominant_ases)
        )
        low_hits = sum(
            1 for day in low
            if day.dominant_ases and any(a in v4_bulk for a, _ in day.dominant_ases)
        )
        assert high_hits >= 0.5 * len(high)
        assert low_hits >= 0.3 * len(low)

    def test_empty_dataset(self):
        study = build_residence_study(num_days=1, seed=1, residences=("E",))
        low, high = heavy_hitter_days(study.dataset("E"))
        # One day: it is simultaneously the low and high tail.
        assert len(low) <= 1 and len(high) <= 1
