"""Tests for the client-side analysis (paper section 3)."""

import numpy as np
import pytest

from repro.core.client import (
    as_traffic_breakdown,
    compute_residence_stats,
    daily_fractions,
    domain_traffic_breakdown,
    hourly_fraction_series,
    shared_as_box_stats,
    shared_domain_box_stats,
)
from repro.flowmon.monitor import FlowScope
from repro.net.asn import AsCategory
from repro.traffic.apps import build_service_catalog, catalog_by_name
from repro.traffic.generate import TrafficGenerator
from repro.traffic.residences import build_paper_residences
from repro.traffic.universe import ServiceUniverse

DAYS = 14


@pytest.fixture(scope="module")
def universe():
    return ServiceUniverse(build_service_catalog())


@pytest.fixture(scope="module")
def datasets(universe):
    generator = TrafficGenerator(universe, seed=13)
    return generator.generate_all(build_paper_residences(), num_days=DAYS)


class TestResidenceStats:
    def test_totals_consistent(self, datasets):
        for dataset in datasets.values():
            stats = compute_residence_stats(dataset)
            ext = stats.external
            assert ext.v4_bytes + ext.v6_bytes == ext.total_bytes
            assert ext.v4_flows + ext.v6_flows == ext.total_flows
            assert 0.0 <= ext.byte_fraction_overall <= 1.0

    def test_table1_shape_fraction_spread(self, datasets):
        """External IPv6 byte fractions vary widely across residences."""
        fractions = [
            compute_residence_stats(d).external.byte_fraction_overall
            for d in datasets.values()
        ]
        assert max(fractions) - min(fractions) > 0.3
        assert max(fractions) > 0.5  # an IPv6-dominant residence exists
        assert min(fractions) < 0.25  # an IPv4-dominant residence exists

    def test_table1_daily_variation(self, datasets):
        """Per-day fractions vary (the paper's s.d. > 0.15 for some)."""
        stds = [
            compute_residence_stats(d).external.byte_fraction_daily_std
            for d in datasets.values()
        ]
        assert max(stds) > 0.10

    def test_internal_tiny_compared_to_external_mostly(self, datasets):
        small = 0
        for name, dataset in datasets.items():
            stats = compute_residence_stats(dataset)
            if stats.internal.total_bytes < 0.05 * stats.external.total_bytes:
                small += 1
        assert small >= 3  # "internal is only ~1% of external for 4 of 5"

    def test_residence_d_flow_inversion(self, datasets):
        """Residence D: internal flows exceed external flows."""
        stats = compute_residence_stats(datasets["D"])
        assert stats.internal.total_flows > stats.external.total_flows


class TestDailyFractions:
    def test_length_and_range(self, datasets):
        fractions = daily_fractions(datasets["A"])
        assert 1 <= len(fractions) <= DAYS + 1
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_metric_validation(self, datasets):
        with pytest.raises(ValueError):
            daily_fractions(datasets["A"], metric="packets")

    def test_flows_metric_differs(self, datasets):
        by_bytes = daily_fractions(datasets["A"], metric="bytes")
        by_flows = daily_fractions(datasets["A"], metric="flows")
        assert by_bytes != by_flows

    def test_internal_scope(self, datasets):
        internal = daily_fractions(datasets["B"], scope=FlowScope.INTERNAL)
        assert internal


class TestHourlySeries:
    def test_shape(self, datasets):
        series = hourly_fraction_series(datasets["A"], num_days=DAYS)
        assert series.shape == (DAYS * 24,)
        assert not np.isnan(series).any()
        assert series.min() >= 0.0 and series.max() <= 1.0

    def test_diurnal_signal_present(self, datasets):
        """Evening hours carry more IPv6 than pre-dawn (human-driven)."""
        series = hourly_fraction_series(datasets["A"], num_days=DAYS)
        hours = np.arange(series.size) % 24
        evening = series[(hours >= 19) | (hours <= 0)].mean()
        predawn = series[(hours >= 3) & (hours <= 5)].mean()
        assert evening > predawn

    def test_window_args(self, datasets):
        series = hourly_fraction_series(datasets["A"], start_day=2, num_days=3)
        assert series.shape == (72,)
        with pytest.raises(ValueError):
            hourly_fraction_series(datasets["A"], start_day=DAYS, num_days=0)

    def test_metric_validation(self, datasets):
        with pytest.raises(ValueError):
            hourly_fraction_series(datasets["A"], metric="packets")


class TestAsBreakdown:
    def test_entries_sorted_and_bounded(self, datasets):
        entries = as_traffic_breakdown(datasets["A"])
        assert entries
        volumes = [e.total_bytes for e in entries]
        assert volumes == sorted(volumes, reverse=True)
        assert all(0.0 <= e.fraction_v6 <= 1.0 for e in entries)

    def test_volume_filter(self, datasets):
        loose = as_traffic_breakdown(datasets["A"], min_volume_share=0.0)
        tight = as_traffic_breakdown(datasets["A"], min_volume_share=0.01)
        assert len(tight) <= len(loose)

    def test_ipv4_only_services_have_zero_fraction(self, datasets):
        by_name = catalog_by_name()
        laggards = {by_name[n].asn for n in ("Zoom", "Twitch", "GitHub")}
        for entry in as_traffic_breakdown(datasets["A"], min_volume_share=0.0):
            if entry.info.asn in laggards:
                assert entry.fraction_v6 == 0.0

    def test_fig3_shape_ases_with_zero_v6_exist(self, datasets):
        """At every residence, >= a quarter of ASes carry no IPv6."""
        for dataset in datasets.values():
            entries = as_traffic_breakdown(dataset)
            if len(entries) < 4:
                continue
            zero = sum(1 for e in entries if e.fraction_v6 == 0.0)
            assert zero / len(entries) >= 0.2

    def test_fig3_residence_c_capped(self, datasets):
        """Broken CPE at C caps every AS's fraction well below 1."""
        entries = as_traffic_breakdown(datasets["C"])
        assert entries
        assert max(e.fraction_v6 for e in entries) < 0.6


class TestSharedAsBoxStats:
    def test_fig4_shape(self, datasets):
        grouped = shared_as_box_stats(datasets, min_residences=3)
        assert grouped
        # Web/social leads, ISPs lag -- the paper's central Figure 4 claim.
        web = grouped.get(AsCategory.WEB_SOCIAL, [])
        isps = grouped.get(AsCategory.ISP, [])
        if web and isps:
            web_best = max(stats.median for _, stats in web)
            isp_best = max(stats.median for _, stats in isps)
            assert web_best > isp_best

    def test_sorted_by_median(self, datasets):
        grouped = shared_as_box_stats(datasets, min_residences=2)
        for entries in grouped.values():
            medians = [stats.median for _, stats in entries]
            assert medians == sorted(medians, reverse=True)

    def test_min_residence_filter(self, datasets):
        all_shared = shared_as_box_stats(datasets, min_residences=1)
        strict = shared_as_box_stats(datasets, min_residences=5)
        count_all = sum(len(v) for v in all_shared.values())
        count_strict = sum(len(v) for v in strict.values())
        assert count_strict <= count_all


class TestDomainBreakdown:
    def test_domains_resolved(self, datasets):
        entries = domain_traffic_breakdown(datasets["A"])
        assert entries
        assert all("." in e.domain for e in entries)

    def test_known_laggard_domains(self, datasets):
        """zoom.us / justin.tv / github.com show zero IPv6 (section 3.4)."""
        entries = {e.domain: e for e in domain_traffic_breakdown(datasets["A"])}
        for domain in ("zoom.us", "justin.tv", "github.com"):
            if domain in entries:
                assert entries[domain].fraction_v6 == 0.0

    def test_shared_domain_stats(self, datasets):
        rows = shared_domain_box_stats(datasets, min_residences=3, min_bytes=1)
        assert rows
        medians = [stats.median for _, stats in rows]
        assert medians == sorted(medians, reverse=True)

    def test_min_bytes_filter(self, datasets):
        few = shared_domain_box_stats(datasets, min_residences=1, min_bytes=10**14)
        assert not few
