"""Tests for the protocol-mix view (modern IPv6 carries data, not control)."""

import pytest

from repro.core import protocol_mix
from repro.datasets import build_residence_study
from repro.flowmon.monitor import FlowScope


@pytest.fixture(scope="module")
def dataset():
    study = build_residence_study(num_days=10, seed=19, residences=("A",))
    return study.dataset("A")


class TestProtocolMix:
    def test_families_present(self, dataset):
        mix = protocol_mix(dataset)
        assert set(mix) == {"IPv4", "IPv6"}

    def test_totals_match_monitor(self, dataset):
        mix = protocol_mix(dataset)
        total = sum(m.total_bytes for m in mix.values())
        expected = sum(r.total_bytes for r in dataset.external_records())
        assert total == expected

    def test_ipv6_is_data_not_control(self, dataset):
        """The paper's framing: early IPv6 was DNS/ICMP control traffic;
        mature IPv6 is dominated by TCP/UDP data."""
        mix = protocol_mix(dataset)
        v6 = mix["IPv6"]
        assert v6.total_bytes > 0
        data_share = v6.byte_share("TCP") + v6.byte_share("UDP")
        assert data_share > 0.99
        assert v6.byte_share("ICMP") < 0.01

    def test_flow_counts_positive(self, dataset):
        mix = protocol_mix(dataset)
        for family_mix in mix.values():
            assert sum(family_mix.flows_by_protocol.values()) > 0

    def test_internal_scope(self, dataset):
        mix = protocol_mix(dataset, scope=FlowScope.INTERNAL)
        assert sum(m.total_bytes for m in mix.values()) == sum(
            r.total_bytes for r in dataset.internal_records()
        )

    def test_byte_share_of_missing_protocol_is_zero(self, dataset):
        mix = protocol_mix(dataset)
        assert mix["IPv6"].byte_share("SCTP") == 0.0
