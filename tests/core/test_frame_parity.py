"""FlowFrame parity: the vectorized analyses must reproduce the original
record-loop implementations *exactly* -- same ints, same floats, same
ordering -- on a seeded dataset.

The reference implementations below are the pre-columnar bodies of the
:mod:`repro.core.client` functions, kept verbatim (record loops over
``monitor.records()``) so any numerical or ordering drift in the
vectorized rewrites fails loudly.
"""

import numpy as np
import pytest

from repro.core.client import (
    as_traffic_breakdown,
    compute_residence_stats,
    daily_fractions,
    domain_traffic_breakdown,
    heavy_hitter_days,
    hourly_fraction_series,
    protocol_mix,
)
from repro.flowmon.monitor import FlowScope
from repro.net.psl import default_psl
from repro.traffic.apps import build_service_catalog
from repro.traffic.generate import TrafficGenerator
from repro.traffic.residences import build_paper_residences
from repro.traffic.universe import ServiceUniverse
from repro.util.timeutil import HOUR, day_index

DAYS = 10
SEED = 99


@pytest.fixture(scope="module")
def datasets():
    universe = ServiceUniverse(build_service_catalog())
    generator = TrafficGenerator(universe, seed=SEED)
    return generator.generate_all(
        build_paper_residences(), num_days=DAYS, parallel=False
    )


# -- reference (pre-columnar) implementations --------------------------------


def ref_scope_stats(records):
    total_bytes = v6_bytes = 0
    total_flows = v6_flows = 0
    per_day: dict[int, list[int]] = {}
    for record in records:
        volume = record.total_bytes
        total_bytes += volume
        total_flows += 1
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, [0, 0, 0, 0])
        bucket[0] += volume
        bucket[2] += 1
        if record.key.is_v6:
            v6_bytes += volume
            v6_flows += 1
            bucket[1] += volume
            bucket[3] += 1
    daily_byte_fracs = [b[1] / b[0] for b in per_day.values() if b[0] > 0]
    daily_flow_fracs = [b[3] / b[2] for b in per_day.values() if b[2] > 0]
    return total_bytes, v6_bytes, total_flows, v6_flows, daily_byte_fracs, daily_flow_fracs


def ref_daily_fractions(dataset, scope, metric):
    per_day: dict[int, list[float]] = {}
    for record in dataset.monitor.records(scope=scope):
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, [0.0, 0.0])
        amount = float(record.total_bytes) if metric == "bytes" else 1.0
        bucket[0] += amount
        if record.key.is_v6:
            bucket[1] += amount
    return [
        bucket[1] / bucket[0]
        for _, bucket in sorted(per_day.items())
        if bucket[0] > 0
    ]


def ref_hourly_series(dataset, scope, metric, start_day, num_days):
    hours = num_days * 24
    totals = np.zeros(hours)
    v6 = np.zeros(hours)
    start_time = start_day * 24 * HOUR
    for record in dataset.monitor.records(scope=scope):
        offset = record.start_time - start_time
        if offset < 0:
            continue
        hour = int(offset // HOUR)
        if hour >= hours:
            continue
        amount = float(record.total_bytes) if metric == "bytes" else 1.0
        totals[hour] += amount
        if record.key.is_v6:
            v6[hour] += amount
    with np.errstate(invalid="ignore", divide="ignore"):
        fractions = np.where(totals > 0, v6 / np.maximum(totals, 1e-12), np.nan)
    observed = ~np.isnan(fractions)
    indices = np.arange(hours)
    fractions[~observed] = np.interp(
        indices[~observed], indices[observed], fractions[observed]
    )
    return fractions


def ref_as_breakdown(dataset, min_volume_share=0.0001):
    routing = dataset.universe.routing
    registry = dataset.universe.registry
    monitor = dataset.monitor
    per_asn: dict[int, list[int]] = {}
    grand_total = 0
    for record in dataset.external_records():
        peer = monitor.external_peer(record)
        if peer is None:
            continue
        asn = routing.origin_of(peer)
        if asn is None:
            continue
        bucket = per_asn.setdefault(asn, [0, 0])
        volume = record.total_bytes
        bucket[0] += volume
        grand_total += volume
        if record.key.is_v6:
            bucket[1] += volume
    threshold = grand_total * min_volume_share
    entries = []
    for asn, (total, v6) in per_asn.items():
        if total < threshold:
            continue
        info = registry.lookup(asn)
        if info is None:
            continue
        entries.append((info.asn, total, v6))
    entries.sort(key=lambda e: e[1], reverse=True)
    return entries


def ref_domain_breakdown(dataset):
    rdns = dataset.universe.rdns
    monitor = dataset.monitor
    psl = default_psl()
    per_domain: dict[str, list[int]] = {}
    for record in dataset.external_records():
        peer = monitor.external_peer(record)
        if peer is None:
            continue
        domain = rdns.lookup_etld1(peer, psl)
        if domain is None:
            continue
        bucket = per_domain.setdefault(domain, [0, 0])
        bucket[0] += record.total_bytes
        if record.key.is_v6:
            bucket[1] += record.total_bytes
    entries = [(d, t, v) for d, (t, v) in per_domain.items()]
    entries.sort(key=lambda e: e[1], reverse=True)
    return entries


def ref_heavy_hitter_days(dataset, low_quantile=0.10, high_quantile=0.90, top_ases=3):
    routing = dataset.universe.routing
    monitor = dataset.monitor
    per_day: dict[int, dict] = {}
    for record in dataset.external_records():
        day = day_index(record.start_time)
        bucket = per_day.setdefault(day, {"total": 0, "v6": 0, "by_asn": {}})
        volume = record.total_bytes
        bucket["total"] += volume
        if record.key.is_v6:
            bucket["v6"] += volume
        peer = monitor.external_peer(record)
        if peer is not None:
            asn = routing.origin_of(peer)
            if asn is not None:
                bucket["by_asn"][asn] = bucket["by_asn"].get(asn, 0) + volume
    days = {day: b for day, b in per_day.items() if b["total"] > 0}
    if not days:
        return [], []
    fractions = {day: b["v6"] / b["total"] for day, b in days.items()}
    values = np.asarray(list(fractions.values()))
    low_cut = float(np.quantile(values, low_quantile))
    high_cut = float(np.quantile(values, high_quantile))

    def build(day):
        bucket = days[day]
        ranked = sorted(bucket["by_asn"].items(), key=lambda kv: -kv[1])[:top_ases]
        return (day, fractions[day], bucket["total"], tuple(ranked))

    low = [build(d) for d in sorted(days) if fractions[d] <= low_cut]
    high = [build(d) for d in sorted(days) if fractions[d] >= high_cut]
    return low, high


def ref_protocol_mix(dataset, scope):
    bytes_by = {"IPv4": {}, "IPv6": {}}
    flows_by = {"IPv4": {}, "IPv6": {}}
    for record in dataset.monitor.records(scope=scope):
        family = "IPv6" if record.key.is_v6 else "IPv4"
        protocol = record.key.protocol.name
        bytes_by[family][protocol] = (
            bytes_by[family].get(protocol, 0) + record.total_bytes
        )
        flows_by[family][protocol] = flows_by[family].get(protocol, 0) + 1
    return bytes_by, flows_by


# -- parity assertions --------------------------------------------------------


class TestTable1Parity:
    def test_scope_stats_exact(self, datasets):
        for name, dataset in datasets.items():
            stats = compute_residence_stats(dataset)
            for scope_stats, records in (
                (stats.external, dataset.external_records()),
                (stats.internal, dataset.internal_records()),
            ):
                tb, v6b, tf, v6f, dbf, dff = ref_scope_stats(records)
                assert scope_stats.total_bytes == tb
                assert scope_stats.v6_bytes == v6b
                assert scope_stats.v4_bytes == tb - v6b
                assert scope_stats.total_flows == tf
                assert scope_stats.v6_flows == v6f
                assert scope_stats.byte_fraction_overall == (
                    v6b / tb if tb else 0.0
                )
                assert scope_stats.byte_fraction_daily_mean == (
                    float(np.mean(dbf)) if dbf else 0.0
                )
                assert scope_stats.byte_fraction_daily_std == (
                    float(np.std(dbf)) if dbf else 0.0
                )
                assert scope_stats.flow_fraction_daily_mean == (
                    float(np.mean(dff)) if dff else 0.0
                )
                assert scope_stats.flow_fraction_daily_std == (
                    float(np.std(dff)) if dff else 0.0
                )


class TestSeriesParity:
    @pytest.mark.parametrize("metric", ["bytes", "flows"])
    @pytest.mark.parametrize("scope", [FlowScope.EXTERNAL, FlowScope.INTERNAL])
    def test_daily_fractions_exact(self, datasets, scope, metric):
        for dataset in datasets.values():
            assert daily_fractions(dataset, scope=scope, metric=metric) == (
                ref_daily_fractions(dataset, scope, metric)
            )

    @pytest.mark.parametrize("metric", ["bytes", "flows"])
    def test_hourly_series_exact(self, datasets, metric):
        for dataset in datasets.values():
            got = hourly_fraction_series(dataset, metric=metric)
            want = ref_hourly_series(
                dataset, FlowScope.EXTERNAL, metric, 0, dataset.num_days
            )
            assert np.array_equal(got, want)

    def test_hourly_series_window_exact(self, datasets):
        dataset = datasets["A"]
        got = hourly_fraction_series(dataset, start_day=3, num_days=4)
        want = ref_hourly_series(dataset, FlowScope.EXTERNAL, "bytes", 3, 4)
        assert np.array_equal(got, want)


class TestBreakdownParity:
    @pytest.mark.parametrize("share", [0.0, 0.0001, 0.01])
    def test_as_breakdown_exact(self, datasets, share):
        for dataset in datasets.values():
            got = [
                (e.info.asn, e.total_bytes, e.v6_bytes)
                for e in as_traffic_breakdown(dataset, min_volume_share=share)
            ]
            assert got == ref_as_breakdown(dataset, share)

    def test_domain_breakdown_exact(self, datasets):
        for dataset in datasets.values():
            got = [
                (e.domain, e.total_bytes, e.v6_bytes)
                for e in domain_traffic_breakdown(dataset)
            ]
            assert got == ref_domain_breakdown(dataset)

    def test_heavy_hitter_days_exact(self, datasets):
        for dataset in datasets.values():
            low, high = heavy_hitter_days(dataset)
            ref_low, ref_high = ref_heavy_hitter_days(dataset)
            got_low = [
                (d.day, d.fraction_v6, d.total_bytes, d.dominant_ases) for d in low
            ]
            got_high = [
                (d.day, d.fraction_v6, d.total_bytes, d.dominant_ases) for d in high
            ]
            assert got_low == ref_low
            assert got_high == ref_high

    @pytest.mark.parametrize("scope", [FlowScope.EXTERNAL, FlowScope.INTERNAL])
    def test_protocol_mix_exact(self, datasets, scope):
        for dataset in datasets.values():
            mixes = protocol_mix(dataset, scope=scope)
            ref_bytes, ref_flows = ref_protocol_mix(dataset, scope)
            for family in ("IPv4", "IPv6"):
                assert mixes[family].bytes_by_protocol == ref_bytes[family]
                assert mixes[family].flows_by_protocol == ref_flows[family]
                # dict insertion order must match the record loop's, too:
                # stable sorts downstream break ties on it.
                assert list(mixes[family].bytes_by_protocol) == list(ref_bytes[family])
