"""Tests for LOESS, STL, and MSTL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mstl import _moving_average, loess_smooth, mstl, stl


class TestLoess:
    def test_constant_series(self):
        y = np.full(50, 3.7)
        smoothed = loess_smooth(y, window=11)
        assert np.allclose(smoothed, 3.7)

    def test_linear_series_reproduced(self):
        """Local linear regression reproduces a line exactly."""
        y = 2.0 * np.arange(40) + 1.0
        smoothed = loess_smooth(y, window=9)
        assert np.allclose(smoothed, y, atol=1e-8)

    def test_smooths_noise(self):
        rng = np.random.default_rng(1)
        y = np.sin(np.arange(200) / 20) + rng.normal(0, 0.3, 200)
        smoothed = loess_smooth(y, window=31)
        truth = np.sin(np.arange(200) / 20)
        assert np.abs(smoothed - truth).mean() < np.abs(y - truth).mean()

    def test_extrapolation(self):
        y = 2.0 * np.arange(20) + 5.0
        out = loess_smooth(y, window=5, x_eval=np.array([-1.0, 20.0]))
        assert out[0] == pytest.approx(3.0, abs=1e-6)
        assert out[1] == pytest.approx(45.0, abs=1e-6)

    def test_degree_zero(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        smoothed = loess_smooth(y, window=4, degree=0)
        assert smoothed.shape == (4,)

    def test_validation(self):
        with pytest.raises(ValueError):
            loess_smooth(np.array([]), window=3)
        with pytest.raises(ValueError):
            loess_smooth(np.ones(10), window=1)
        with pytest.raises(ValueError):
            loess_smooth(np.ones(10), window=3, degree=2)
        with pytest.raises(ValueError):
            loess_smooth(np.ones(10), window=3, x=np.arange(5))

    def test_window_larger_than_series(self):
        y = np.array([1.0, 2.0, 3.0])
        smoothed = loess_smooth(y, window=99)
        assert smoothed.shape == (3,)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=4, max_size=40))
    def test_output_within_data_envelope_for_interior(self, values):
        """Degree-0 LOESS output is a convex combination of inputs."""
        y = np.asarray(values)
        smoothed = loess_smooth(y, window=5, degree=0)
        assert smoothed.min() >= y.min() - 1e-9
        assert smoothed.max() <= y.max() + 1e-9


class TestMovingAverage:
    def test_basic(self):
        out = _moving_average(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert np.allclose(out, [1.5, 2.5, 3.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            _moving_average(np.ones(3), 0)
        with pytest.raises(ValueError):
            _moving_average(np.ones(3), 5)


def synthetic_series(n: int, noise: float = 0.02) -> dict[str, np.ndarray]:
    t = np.arange(n)
    daily = 0.15 * np.sin(2 * np.pi * t / 24)
    weekly = 0.08 * np.sin(2 * np.pi * t / 168)
    trend = 0.5 + 0.0001 * t
    rng = np.random.default_rng(7)
    observed = trend + daily + weekly + rng.normal(0, noise, n)
    return {"observed": observed, "daily": daily, "weekly": weekly, "trend": trend}


class TestStl:
    def test_additivity(self):
        data = synthetic_series(24 * 21)
        result = stl(data["observed"], period=24)
        reconstructed = result.trend + result.seasonal + result.residual
        assert np.allclose(reconstructed, data["observed"])

    def test_recovers_daily_cycle(self):
        data = synthetic_series(24 * 21)
        result = stl(data["observed"], period=24)
        corr = np.corrcoef(result.seasonal, data["daily"])[0, 1]
        assert corr > 0.95

    def test_periodic_seasonal_is_stable(self):
        """'periodic' constrains each phase to one value (up to low-pass)."""
        data = synthetic_series(24 * 14, noise=0.0)
        result = stl(data["observed"], period=24, seasonal_window="periodic")
        phase0 = result.seasonal[0::24]
        assert phase0.std() < 0.02

    def test_integer_seasonal_window(self):
        data = synthetic_series(24 * 14)
        result = stl(data["observed"], period=24, seasonal_window=7)
        assert np.allclose(
            result.trend + result.seasonal + result.residual, data["observed"]
        )

    def test_seasonal_sums_near_zero(self):
        data = synthetic_series(24 * 21)
        result = stl(data["observed"], period=24)
        assert abs(result.seasonal.mean()) < 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            stl(np.ones(10), period=1)
        with pytest.raises(ValueError):
            stl(np.ones(10), period=8)  # < 2 periods
        with pytest.raises(ValueError):
            stl(np.ones(48), period=24, inner_iterations=0)
        with pytest.raises(ValueError):
            stl(np.ones(48), period=24, seasonal_window="bogus")
        with pytest.raises(ValueError):
            stl(np.ones(48), period=24, seasonal_window=2)

    def test_components_dict(self):
        data = synthetic_series(24 * 14)
        result = stl(data["observed"], period=24)
        components = result.components()
        assert set(components) == {"observed", "trend", "seasonal", "residual"}


class TestMstl:
    def test_additivity_exact(self):
        data = synthetic_series(24 * 7 * 6)
        result = mstl(data["observed"], [24, 168])
        assert np.allclose(result.reconstruction(), data["observed"])

    def test_recovers_both_cycles(self):
        data = synthetic_series(24 * 7 * 8)
        result = mstl(data["observed"], [24, 168])
        assert np.corrcoef(result.seasonal(24), data["daily"])[0, 1] > 0.95
        assert np.corrcoef(result.seasonal(168), data["weekly"])[0, 1] > 0.9

    def test_trend_recovered(self):
        data = synthetic_series(24 * 7 * 8)
        result = mstl(data["observed"], [24, 168])
        assert np.corrcoef(result.trend, data["trend"])[0, 1] > 0.9

    def test_residual_small(self):
        data = synthetic_series(24 * 7 * 8, noise=0.02)
        result = mstl(data["observed"], [24, 168])
        assert result.residual.std() < 0.04

    def test_no_weekly_signal_yields_flat_weekly(self):
        """A purely daily series decomposes with a tiny weekly component."""
        n = 24 * 7 * 6
        t = np.arange(n)
        observed = 0.5 + 0.2 * np.sin(2 * np.pi * t / 24)
        result = mstl(observed, [24, 168])
        assert result.seasonal(168).std() < 0.25 * result.seasonal(24).std()

    def test_duplicate_periods_deduped(self):
        data = synthetic_series(24 * 14)
        result = mstl(data["observed"], [24, 24])
        assert list(result.seasonals) == [24]

    def test_validation(self):
        with pytest.raises(ValueError):
            mstl(np.ones(100), [])
        with pytest.raises(ValueError):
            mstl(np.ones(100), [168])  # too short
        with pytest.raises(ValueError):
            mstl(np.ones(100), [24], iterations=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_additivity_property(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.random(24 * 8)
        result = mstl(y, [24])
        assert np.allclose(result.reconstruction(), y, atol=1e-9)
