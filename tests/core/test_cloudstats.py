"""Tests for the cloud adoption analysis (paper section 5)."""

import pytest

from repro.cloud.providers import Ipv6Policy
from repro.core.cloudstats import (
    attribute_domains,
    cloud_pair_heatmap,
    cloud_provider_breakdown,
    multicloud_tenants,
    overall_domain_counts,
    rank_clouds_by_wins,
    service_adoption_table,
)
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

NUM_SITES = 1200


@pytest.fixture(scope="module")
def eco():
    return WebEcosystem(WebEcosystemConfig(num_sites=NUM_SITES, seed=31))


@pytest.fixture(scope="module")
def views(eco):
    dataset = WebCensus(eco, CensusConfig(seed=31)).run()
    return attribute_domains(dataset, eco.routing, eco.registry)


class TestAttribution:
    def test_views_cover_crawled_fqdns(self, views):
        assert len(views) > NUM_SITES  # subdomains + third parties

    def test_orgs_resolved_for_routable_fqdns(self, views):
        resolved = [v for v in views.values() if v.has_a]
        with_org = [v for v in resolved if v.v4_org is not None]
        assert len(with_org) / len(resolved) > 0.95

    def test_split_origin_artifact_exists(self, views):
        """Bunnyway/Akamai-legacy style split-origin domains appear."""
        split = [v for v in views.values() if v.split_origin]
        assert split
        orgs = {v.v6_org.name for v in split}
        assert any("BUNNYWAY" in name or "Akamai" in name for name in orgs)


class TestProviderBreakdown:
    def test_counts_partition(self, views):
        for stats in cloud_provider_breakdown(views):
            assert stats.ipv4_only + stats.ipv6_full + stats.ipv6_only == stats.total
            assert stats.total > 0

    def test_fig11_cdn_first_beats_traditional(self, views):
        stats = {s.org.name: s for s in cloud_provider_breakdown(views)}
        cloudflare = stats["Cloudflare, Inc."]
        amazon = stats["Amazon.com, Inc."]
        assert cloudflare.share(cloudflare.ipv6_full) > amazon.share(amazon.ipv6_full)

    def test_fig11_bunnyway_ipv6_only(self, views):
        stats = {s.org.name: s for s in cloud_provider_breakdown(views)}
        bunny = stats.get("BUNNYWAY, informacijske storitve d.o.o.")
        if bunny is None:
            pytest.skip("no bunny tenants in this universe")
        assert bunny.share(bunny.ipv6_only) > 0.9

    def test_fig11_akamai_tech_ipv4_only(self, views):
        stats = {s.org.name: s for s in cloud_provider_breakdown(views)}
        tech = stats.get("Akamai Technologies, Inc.")
        if tech is None:
            pytest.skip("no legacy-Akamai tenants in this universe")
        assert tech.share(tech.ipv4_only) > 0.9

    def test_overall_counts(self, views):
        total, ipv4_only, full, v6_only = overall_domain_counts(views)
        assert total == ipv4_only + full + v6_only
        assert 0.3 < ipv4_only / total < 0.8  # paper overall: 56.3%


class TestMulticloud:
    def test_tenants_have_two_orgs(self, views):
        tenants = multicloud_tenants(views)
        assert tenants
        for by_org in tenants.values():
            assert len(by_org) >= 2

    def test_fig12_heatmap(self, views):
        tenants = multicloud_tenants(views)
        comparisons = cloud_pair_heatmap(tenants)
        assert comparisons
        for cell in comparisons:
            assert -1.0 <= cell.effect_size <= 1.0
            assert 0.0 <= cell.p_value <= 1.0
            if not cell.comparable:
                assert not cell.significant

    def test_fig12_direction_cloudflare_beats_selfhosted(self, views):
        """Where significant, the default-on CDN wins (paper's finding)."""
        tenants = multicloud_tenants(views)
        comparisons = cloud_pair_heatmap(tenants)
        for cell in comparisons:
            pair = {cell.org_a, cell.org_b}
            if pair == {"Cloudflare, Inc.", "(self-hosted / other)"} and cell.significant:
                expected_sign = 1.0 if cell.org_a == "Cloudflare, Inc." else -1.0
                assert cell.effect_size * expected_sign > 0

    def test_ranking_orders_orgs(self, views):
        tenants = multicloud_tenants(views)
        comparisons = cloud_pair_heatmap(tenants)
        ranking = rank_clouds_by_wins(comparisons)
        orgs = {c.org_a for c in comparisons} | {c.org_b for c in comparisons}
        assert set(ranking) == orgs


class TestServiceTable:
    def test_table2_rows(self, eco, views):
        table = service_adoption_table(views, eco.service_of_cname, min_domains=3)
        assert table
        for row in table:
            assert 0 <= row.ipv6_ready <= row.total
            assert 0.0 <= row.share <= 1.0

    def test_table2_policy_gradient(self, eco, views):
        """Adoption orders by policy: always-on ~100%, default-on high,
        opt-in low, code-change/none ~0 (Table 2's central claim)."""
        table = service_adoption_table(views, eco.service_of_cname, min_domains=8)
        by_policy: dict[Ipv6Policy, list[float]] = {}
        for row in table:
            by_policy.setdefault(row.service.policy, []).append(row.share)

        def mean(policy):
            values = by_policy.get(policy)
            return sum(values) / len(values) if values else None

        always = mean(Ipv6Policy.ALWAYS_ON)
        default = mean(Ipv6Policy.DEFAULT_ON)
        opt_in = mean(Ipv6Policy.OPT_IN)
        none = mean(Ipv6Policy.NONE)
        if always is not None:
            assert always == 1.0
        if default is not None and opt_in is not None:
            assert default > opt_in + 0.2
        if none is not None:
            assert none == 0.0

    def test_s3_style_code_change_near_zero(self, eco, views):
        table = service_adoption_table(views, eco.service_of_cname)
        s3_rows = [r for r in table if r.service.name == "Amazon S3"]
        if not s3_rows:
            pytest.skip("no S3 tenants in this universe")
        assert s3_rows[0].share < 0.1

    def test_min_domains_filter(self, eco, views):
        all_rows = service_adoption_table(views, eco.service_of_cname, min_domains=1)
        filtered = service_adoption_table(views, eco.service_of_cname, min_domains=50)
        assert len(filtered) <= len(all_rows)
