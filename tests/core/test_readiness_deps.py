"""Tests for readiness classification and dependency analysis."""

import numpy as np
import pytest

from repro.core.deps import (
    analyze_dependencies,
    estimate_version_split_misclassification,
    heavy_hitter_categories,
    resource_type_matrix,
    whatif_adoption_curve,
)
from repro.core.readiness import (
    SiteClass,
    census_breakdown,
    classify_site,
    top_n_breakdown,
)
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.crawler.records import SiteFailure
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig

NUM_SITES = 900


@pytest.fixture(scope="module")
def eco():
    return WebEcosystem(WebEcosystemConfig(num_sites=NUM_SITES, seed=21))


@pytest.fixture(scope="module")
def dataset(eco):
    return WebCensus(eco, CensusConfig(seed=21)).run()


@pytest.fixture(scope="module")
def breakdown(dataset):
    return census_breakdown(dataset)


@pytest.fixture(scope="module")
def analysis(dataset):
    return analyze_dependencies(dataset)


class TestClassification:
    def test_every_site_classified(self, dataset):
        for result in dataset.results:
            assert classify_site(result) in SiteClass

    def test_failures_classified_as_failures(self, dataset):
        for result in dataset.results:
            cls = classify_site(result)
            if result.failure is SiteFailure.NXDOMAIN:
                assert cls is SiteClass.LOADING_FAILURE_NXDOMAIN
            elif result.failure is SiteFailure.OTHER:
                assert cls is SiteClass.LOADING_FAILURE_OTHER

    def test_partition_invariants(self, breakdown):
        breakdown.check_invariants()  # raises on violation

    def test_fig5_shape(self, breakdown):
        """The headline Figure 5 proportions, loosely."""
        b = breakdown
        assert 0.10 <= b.nxdomain / b.total <= 0.18
        v4_share = b.share_of_connected(b.ipv4_only)
        partial_share = b.share_of_connected(b.ipv6_partial)
        full_share = b.share_of_connected(b.ipv6_full)
        assert 0.45 <= v4_share <= 0.70  # paper: 57.6%
        assert partial_share > full_share  # partial dominates full
        assert 0.05 <= full_share <= 0.30  # paper: 12.6%

    def test_browser_used_ipv4_minority(self, breakdown):
        """About 1 in 10 IPv6-full sites still rode IPv4 (Figure 5)."""
        b = breakdown
        assert b.ipv6_full > 0
        share = b.browser_used_ipv4 / b.ipv6_full
        assert 0.0 < share < 0.4

    def test_fig6_rank_gradient(self, dataset):
        rows = top_n_breakdown(dataset, ns=(100, NUM_SITES))
        assert len(rows) == 2
        top, full_list = rows
        assert top.ipv6_full_share > full_list.ipv6_full_share
        assert top.ipv4_only_share < full_list.ipv4_only_share

    def test_top_n_skips_empty(self, dataset):
        rows = top_n_breakdown(dataset, ns=(0,))
        assert rows == []


class TestDependencyAnalysis:
    def test_counts_match_partial_population(self, analysis, breakdown):
        assert analysis.num_partial == breakdown.ipv6_partial
        assert len(analysis.v4only_resource_counts) == analysis.num_partial

    def test_every_partial_site_has_v4only_resources(self, analysis):
        assert all(c >= 1 for c in analysis.v4only_resource_counts)
        assert all(0.0 < f <= 1.0 for f in analysis.v4only_resource_fractions)

    def test_fig7_shape(self, analysis):
        """Multiple IPv4-only resources, but a minority of all resources."""
        counts = np.array(analysis.v4only_resource_counts)
        fractions = np.array(analysis.v4only_resource_fractions)
        assert np.percentile(counts, 50) >= 2  # paper: p50 = 7
        assert np.percentile(fractions, 50) <= 0.5  # paper: p50 = 0.21

    def test_fig8_span_long_tail(self, analysis):
        spans = np.array([i.span for i in analysis.domain_impacts.values()])
        assert np.percentile(spans, 75) <= 3  # paper: p75 = 2
        assert spans.max() >= 10 * np.percentile(spans, 75)  # heavy head

    def test_contributions_valid(self, analysis):
        for impact in analysis.domain_impacts.values():
            assert len(impact.contributions) == impact.span
            assert all(0.0 < c <= 1.0 for c in impact.contributions)
            assert 0.0 < impact.median_contribution <= 1.0

    def test_first_party_rare(self, analysis):
        """First-party-only partial sites are rare (paper: 2.3%)."""
        assert len(analysis.first_party_only_sites) < 0.2 * analysis.num_partial

    def test_impacts_sorted_by_span(self, analysis):
        impacts = analysis.impacts_by_span()
        spans = [i.span for i in impacts]
        assert spans == sorted(spans, reverse=True)


class TestWhatIf:
    def test_curve_monotone_and_complete(self, analysis):
        curve = whatif_adoption_curve(analysis)
        assert curve
        fulls = [full for _, full in curve]
        assert fulls == sorted(fulls)
        assert curve[-1][1] == analysis.num_partial  # all eventually full
        assert curve[-1][0] == len(analysis.domain_impacts)

    def test_fig10_head_unlocks_disproportionately(self, analysis):
        """A few percent of domains unlock >25% of partial sites."""
        curve = whatif_adoption_curve(analysis)
        k = max(1, round(0.033 * len(curve)))
        unlocked = curve[k - 1][1] / analysis.num_partial
        assert unlocked > 0.25

    def test_empty_analysis(self):
        from repro.core.deps import DependencyAnalysis

        empty = DependencyAnalysis(
            partial_sites=[], v4only_resource_counts=[],
            v4only_resource_fractions=[], domain_impacts={},
            first_party_only_sites=[], site_pending_domains={},
        )
        assert whatif_adoption_curve(empty) == []


class TestHeavyHitters:
    def test_fig9_ads_dominate(self, eco, analysis):
        pool = eco.pool
        histogram = heavy_hitter_categories(
            analysis,
            lambda d: pool.get(d).category if d in pool else None,
            min_span=max(3, NUM_SITES // 250),
        )
        assert histogram
        top_category, _ = histogram.most_common(1)[0]
        assert top_category is not None
        assert top_category.value == "ads"

    def test_uncategorizable_counted_under_none(self, analysis):
        histogram = heavy_hitter_categories(analysis, lambda d: None, min_span=1)
        assert set(histogram) == {None}


class TestResourceTypeMatrix:
    def test_fig18_shape(self, analysis):
        domains, types, matrix = resource_type_matrix(analysis, top_k=10)
        assert len(domains) <= 10
        assert matrix.shape == (len(domains), len(types))
        assert (matrix >= 0).all()
        assert matrix.sum() > 0

    def test_row_totals_bounded_by_span(self, analysis):
        domains, types, matrix = resource_type_matrix(analysis, top_k=10)
        for i, domain in enumerate(domains):
            span = analysis.domain_impacts[domain].span
            assert matrix[i].max() <= span

    def test_validation(self, analysis):
        with pytest.raises(ValueError):
            resource_type_matrix(analysis, top_k=0)


class TestVersionSplit:
    def test_estimate_small(self, dataset):
        suspected, total = estimate_version_split_misclassification(dataset)
        assert total > 0
        assert suspected <= total
        # Deliberate v4-only subdomains are a rare edge case (paper: 0.4%).
        assert suspected / total < 0.1
