"""Export-drift guard: ``__all__`` must exactly match the imports.

``repro/core/__init__.py`` (and the other aggregating ``__init__``
modules) maintain the import list and ``__all__`` by hand, in two
places; this test keeps them from drifting apart.
"""

import ast
import importlib

import pytest

AGGREGATORS = [
    "repro.core",
    "repro.api",
    "repro.datasets",
    "repro.observatory",
    "repro.whatif",
    "repro.store",
    "repro.serve",
    "repro.resilience",
    "repro.telemetry",
    "repro.prof",
]


def _imported_names(module) -> set[str]:
    tree = ast.parse(open(module.__file__).read())
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module != "__future__":
            names.update(alias.asname or alias.name for alias in node.names)
    return names


@pytest.mark.parametrize("module_name", AGGREGATORS)
def test_all_matches_imports(module_name):
    module = importlib.import_module(module_name)
    declared = list(module.__all__)
    assert len(set(declared)) == len(declared), "duplicate names in __all__"
    imported = _imported_names(module)
    assert set(declared) == imported, (
        f"{module_name}.__all__ drifted from its imports: "
        f"missing={sorted(imported - set(declared))}, "
        f"stale={sorted(set(declared) - imported)}"
    )


@pytest.mark.parametrize("module_name", AGGREGATORS)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, name
