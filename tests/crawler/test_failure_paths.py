"""Crawler robustness: redirect loops, empty pages, injected failures."""

import pytest

from repro.crawler.crawl import CensusConfig, WebCensus
from repro.crawler.records import SiteFailure
from repro.net.addr import IpAddress, Prefix
from repro.net.dns import DnsRecordType, DnsStatus
from repro.web.ecosystem import WebEcosystem, WebEcosystemConfig
from repro.web.sites import Page, Website


@pytest.fixture(scope="module")
def eco():
    return WebEcosystem(WebEcosystemConfig(num_sites=120, seed=55))


@pytest.fixture(scope="module")
def census(eco):
    return WebCensus(eco, CensusConfig(seed=55))


class TestRedirectHandling:
    def test_redirect_loop_is_other_failure(self, eco, census):
        """A site whose redirects cycle forever must not hang the crawl."""
        plan = next(
            p for p in eco.plans.values()
            if p.website is not None and p.status.value == "ok"
        )
        website = plan.website
        original = dict(website.redirects)
        try:
            website.redirects[website.main_host] = website.etld1  # cycle
            result = census.crawl_site(website.etld1, website.rank)
            assert result.failure is SiteFailure.OTHER
        finally:
            website.redirects.clear()
            website.redirects.update(original)

    def test_unknown_site_is_nxdomain(self, census):
        result = census.crawl_site("never-created-site.zz", 1)
        assert result.failure is SiteFailure.NXDOMAIN
        assert not result.requests

    def test_midcrawl_dns_failure_marks_other(self, eco, census):
        plan = next(
            p for p in eco.plans.values()
            if p.website is not None and p.status.value == "ok"
        )
        host = plan.website.main_host
        eco.resolver.inject_failure(host, DnsStatus.SERVFAIL)
        try:
            # A fresh census avoids the shared browser's DNS cache.
            fresh = WebCensus(eco, CensusConfig(seed=56))
            result = fresh.crawl_site(plan.entry.etld1, plan.entry.rank)
            assert result.failure is SiteFailure.OTHER
        finally:
            eco.resolver.clear_failure(host)


class TestDegeneratePages:
    def test_site_with_no_links(self, eco):
        """A single-page site crawls fine with zero clicks available."""
        zone = eco.zones.get_or_create_zone("lonely-test.com")
        zone.add("www.lonely-test.com", DnsRecordType.A, IpAddress.parse("4.3.2.1"))
        eco.routing.announce(Prefix.parse("4.3.2.0/24"), 65000)
        website = Website(etld1="lonely-test.com", rank=1, main_host="www.lonely-test.com")
        website.pages["/"] = Page(path="/")
        website.redirects["lonely-test.com"] = "www.lonely-test.com"
        zone.add("lonely-test.com", DnsRecordType.A, IpAddress.parse("4.3.2.2"))
        from repro.web.ecosystem import SitePlan, SiteStatus
        from repro.web.toplist import TopListEntry

        eco.plans["lonely-test.com"] = SitePlan(
            TopListEntry(1, "lonely-test.com"), SiteStatus.OK, website=website
        )
        fresh = WebCensus(eco, CensusConfig(seed=57))
        result = fresh.crawl_site("lonely-test.com", 1)
        assert result.connected
        assert result.pages_visited == ["/"]
        assert result.main_page_request() is not None

    def test_fewer_links_than_clicks(self, eco):
        """Sites with fewer than five links yield fewer visited pages."""
        fresh = WebCensus(eco, CensusConfig(link_clicks=50, seed=58))
        plan = next(
            p for p in eco.plans.values()
            if p.website is not None and p.status.value == "ok"
        )
        result = fresh.crawl_site(plan.entry.etld1, plan.entry.rank)
        assert len(result.pages_visited) <= len(plan.website.pages)


class TestFailedResourceHandling:
    def test_failed_resources_recorded_but_not_classified(self, eco):
        """A resource whose DNS fails is recorded with succeeded=False;
        the paper excludes such resources from classification."""
        from repro.core.readiness import classify_site, SiteClass

        plan = next(
            p for p in eco.plans.values()
            if p.website is not None and p.status.value == "ok"
            and p.tenant.main_placement.has_aaaa
        )
        # Break one of the site's third-party resources.
        target = None
        for page in plan.website.pages.values():
            for resource in page.resources:
                if not resource.fqdn.endswith(plan.entry.etld1):
                    target = resource.fqdn
                    break
            if target:
                break
        if target is None:
            pytest.skip("site has no third-party resources")
        eco.resolver.inject_failure(target, DnsStatus.TIMEOUT)
        try:
            fresh = WebCensus(eco, CensusConfig(seed=59))
            result = fresh.crawl_site(plan.entry.etld1, plan.entry.rank)
            assert result.connected
            failed = [r for r in result.resource_requests() if not r.succeeded]
            assert any(r.fqdn == target for r in failed)
            # Classification ignores the failed resource entirely.
            assert classify_site(result) in (SiteClass.IPV6_PARTIAL, SiteClass.IPV6_FULL)
        finally:
            eco.resolver.clear_failure(target)
