"""Tests for the browser and census crawler."""

import pytest

from repro.crawler.browser import BrowserConfig, SimulatedBrowser
from repro.crawler.crawl import CensusConfig, WebCensus
from repro.crawler.records import SiteFailure
from repro.net.addr import Family
from repro.util.rng import RngStream
from repro.web.ecosystem import SiteStatus, WebEcosystem, WebEcosystemConfig


@pytest.fixture(scope="module")
def eco() -> WebEcosystem:
    return WebEcosystem(WebEcosystemConfig(num_sites=300, seed=11))


@pytest.fixture(scope="module")
def dataset(eco):
    return WebCensus(eco, CensusConfig(seed=11)).run()


class TestBrowser:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrowserConfig(slow_aaaa_probability=2.0)
        with pytest.raises(ValueError):
            BrowserConfig(dns_latency=-1)

    def test_dns_cache(self, eco):
        browser = SimulatedBrowser(
            eco.resolver, eco.connectivity, RngStream(1, "b")
        )
        plan = next(p for p in eco.plans.values() if p.status is SiteStatus.OK)
        host = plan.website.main_host
        before = eco.resolver.queries_issued
        browser.resolve(host)
        mid = eco.resolver.queries_issued
        browser.resolve(host)
        assert eco.resolver.queries_issued == mid
        assert mid > before

    def test_fetch_nonexistent(self, eco):
        browser = SimulatedBrowser(eco.resolver, eco.connectivity, RngStream(1, "b"))
        outcome = browser.fetch("definitely.not-a-site.zz")
        assert not outcome.succeeded
        assert outcome.dns_failed
        assert outcome.family_used is None

    def test_fetch_dual_stack_prefers_v6(self, eco):
        browser = SimulatedBrowser(
            eco.resolver, eco.connectivity, RngStream(1, "b"),
            BrowserConfig(slow_aaaa_probability=0.0),
        )
        for plan in eco.plans.values():
            if plan.tenant is None:
                continue
            www = plan.tenant.main_placement
            if www.has_aaaa and plan.status is SiteStatus.OK:
                outcome = browser.fetch(www.fqdn)
                assert outcome.family_used is Family.V6
                break


class TestCensus:
    def test_one_result_per_entry(self, eco, dataset):
        assert len(dataset) == len(eco.toplist)
        ranks = [r.rank for r in dataset.results]
        assert ranks == sorted(ranks)

    def test_failures_match_ground_truth(self, eco, dataset):
        for result in dataset.results:
            plan = eco.plan_of(result.site)
            if plan.status is SiteStatus.NXDOMAIN:
                assert result.failure is SiteFailure.NXDOMAIN
            elif plan.status in (SiteStatus.DNS_FAILURE, SiteStatus.TIMEOUT,
                                 SiteStatus.TLS_FAILURE):
                assert result.failure is SiteFailure.OTHER
            elif plan.status is SiteStatus.UNKNOWN_PRIMARY:
                assert result.failure is SiteFailure.UNKNOWN_PRIMARY
            else:
                assert result.connected, result.site

    def test_connected_sites_have_main_page_record(self, dataset):
        for result in dataset.connected_results():
            main = result.main_page_request()
            assert main is not None
            assert main.fqdn == result.final_host
            assert main.succeeded

    def test_link_clicks_bounded(self, dataset):
        for result in dataset.connected_results():
            assert 1 <= len(result.pages_visited) <= 6  # main + up to 5

    def test_pages_same_site(self, eco, dataset):
        for result in dataset.connected_results()[:50]:
            plan = eco.plan_of(result.site)
            for path in result.pages_visited:
                assert path in plan.website.pages

    def test_resources_recorded_once_per_site(self, dataset):
        for result in dataset.connected_results()[:50]:
            fqdns = [r.fqdn for r in result.resource_requests()]
            assert len(fqdns) == len(set(fqdns))

    def test_aaaa_availability_matches_ground_truth(self, eco, dataset):
        """The census's DNS view must agree with placement ground truth."""
        checked = 0
        for result in dataset.connected_results():
            plan = eco.plan_of(result.site)
            truth = {p.fqdn: p.has_aaaa for p in plan.tenant.placements}
            for record in result.resource_requests():
                if record.fqdn in truth and record.succeeded:
                    assert record.has_aaaa == truth[record.fqdn]
                    checked += 1
        assert checked > 50

    def test_nested_dependencies_crawled(self, eco, dataset):
        """Resources at depth >= 1 appear (ad syndication chains)."""
        depths = {r.depth for r in dataset.all_requests()}
        assert 0 in depths
        assert any(d >= 1 for d in depths)

    def test_cname_chains_expose_services(self, eco, dataset):
        identified = 0
        for record in dataset.all_requests()[:400]:
            if len(record.cname_chain) >= 2:
                if eco.service_of_cname(record.cname_chain[-1]) is not None:
                    identified += 1
        assert identified > 100

    def test_zero_link_clicks_config(self, eco):
        dataset = WebCensus(eco, CensusConfig(link_clicks=0, seed=1)).run()
        for result in dataset.connected_results():
            assert result.pages_visited == ["/"]

    def test_link_clicks_discover_more_resources(self, eco):
        """Clicking links finds more third parties (section 4.2's 1.6%
        IPv6-full drop when links are followed)."""
        no_clicks = WebCensus(eco, CensusConfig(link_clicks=0, seed=1)).run()
        clicks = WebCensus(eco, CensusConfig(link_clicks=5, seed=1)).run()
        n0 = len(no_clicks.unique_fqdns())
        n5 = len(clicks.unique_fqdns())
        assert n5 >= n0

    def test_deterministic(self, eco):
        d1 = WebCensus(eco, CensusConfig(seed=2)).run()
        d2 = WebCensus(eco, CensusConfig(seed=2)).run()
        assert [len(r.requests) for r in d1.results] == [
            len(r.requests) for r in d2.results
        ]
