"""Call-tree construction: determinism, expansion, speedscope export."""

from types import SimpleNamespace

import pytest

from repro.prof import tree as tree_mod
from repro.prof.tree import (
    build_call_tree,
    frame_of,
    speedscope_document,
    tree_projection,
)


def code(filename, lineno, name):
    return SimpleNamespace(
        co_filename=filename, co_firstlineno=lineno, co_name=name,
        co_qualname=name,
    )


def entry(code_obj, callcount, totaltime, inlinetime, calls=()):
    return SimpleNamespace(
        code=code_obj, callcount=callcount, totaltime=totaltime,
        inlinetime=inlinetime, calls=list(calls),
    )


def sub(code_obj, callcount, totaltime):
    return SimpleNamespace(code=code_obj, callcount=callcount,
                           totaltime=totaltime)


A = code("/checkout/src/repro/api/session.py", 10, "build")
B = code("/checkout/src/repro/flowmon/frame.py", 20, "reduce")
C = code("/checkout/src/repro/util/rng.py", 30, "substream")


def simple_entries():
    """A calls B twice; B calls C once; C is a leaf."""
    return [
        entry(A, 1, 1.0, 0.4, [sub(B, 2, 0.6)]),
        entry(B, 2, 0.6, 0.4, [sub(C, 1, 0.2)]),
        entry(C, 1, 0.2, 0.2),
    ]


class TestFrames:
    def test_builtin_string_code(self):
        assert frame_of("<built-in method len>") == (
            "~", 0, "<built-in method len>"
        )

    def test_repo_paths_lose_the_checkout_prefix(self):
        file, line, name = frame_of(A)
        assert file == "repro/api/session.py"
        assert (line, name) == (10, "build")

    def test_site_packages_paths_normalize(self):
        file, _, _ = frame_of(
            code("/venv/lib/python3.12/site-packages/numpy/core/x.py", 1, "f")
        )
        assert file == "site-packages/numpy/core/x.py"

    def test_foreign_paths_keep_two_components(self):
        file, _, _ = frame_of(code("/opt/other/pkg/mod.py", 1, "f"))
        assert file == "pkg/mod.py"

    def test_builtin_labels_lose_process_addresses(self):
        # Bound builtins repr their owner's address -- per-process
        # noise that would break run-to-run tree identity.
        _, _, name = frame_of(
            "<built-in method __new__ of type object at 0x7f21f1b29510>"
        )
        assert name == "<built-in method __new__ of type object>"


class TestBuildCallTree:
    def test_structure_and_times(self):
        doc = build_call_tree(simple_entries(), duration_s=1.0)
        assert doc["functions"] == 3
        assert doc["truncated"] is False
        (root,) = doc["roots"]
        assert (root["name"], root["calls"]) == ("build", 1)
        assert root["total_s"] == pytest.approx(1.0)
        assert root["self_s"] == pytest.approx(0.4)
        (child,) = root["children"]
        assert (child["name"], child["calls"]) == ("reduce", 2)
        (leaf,) = child["children"]
        assert (leaf["name"], leaf["children"]) == ("substream", [])

    def test_coverage_is_root_time_over_duration(self):
        doc = build_call_tree(simple_entries(), duration_s=2.0)
        assert doc["profiled_s"] == pytest.approx(1.0)
        assert doc["coverage"] == pytest.approx(0.5)
        assert build_call_tree([], 0.0)["coverage"] is None

    def test_children_sort_by_frame_not_by_time(self):
        fast = code("/x/repro/a.py", 1, "fast")
        slow = code("/x/repro/z.py", 1, "slow")
        entries = [
            entry(A, 1, 1.0, 0.1, [sub(slow, 1, 0.6), sub(fast, 1, 0.3)]),
            entry(fast, 1, 0.3, 0.3),
            entry(slow, 1, 0.6, 0.6),
        ]
        doc = build_call_tree(entries, 1.0)
        names = [child["name"] for child in doc["roots"][0]["children"]]
        assert names == ["fast", "slow"]  # repro/a.py < repro/z.py

    def test_shared_subtree_time_distributes_by_share(self):
        # A and B both call C; C's aggregate time splits 3:1.
        a = code("/x/repro/a.py", 1, "a")
        b = code("/x/repro/b.py", 1, "b")
        entries = [
            entry(a, 1, 0.75, 0.0, [sub(C, 3, 0.3)]),
            entry(b, 1, 0.25, 0.0, [sub(C, 1, 0.1)]),
            entry(C, 4, 0.4, 0.4),
        ]
        doc = build_call_tree(entries, 1.0)
        by_name = {root["name"]: root for root in doc["roots"]}
        assert by_name["a"]["children"][0]["total_s"] == pytest.approx(0.3)
        assert by_name["b"]["children"][0]["total_s"] == pytest.approx(0.1)

    def test_recursion_cycles_cut_and_time_stays_self(self):
        rec = code("/x/repro/r.py", 5, "recurse")
        entries = [
            entry(A, 1, 1.0, 0.0, [sub(rec, 1, 1.0)]),
            entry(rec, 5, 1.0, 1.0, [sub(rec, 4, 0.8)]),
        ]
        doc = build_call_tree(entries, 1.0)
        (root,) = doc["roots"]
        (child,) = root["children"]
        assert child["name"] == "recurse"
        assert child["children"] == []  # the self-edge is cut
        assert child["self_s"] == pytest.approx(1.0)

    def test_node_cap_truncates_deterministically(self, monkeypatch):
        monkeypatch.setattr(tree_mod, "MAX_TREE_NODES", 2)
        first = build_call_tree(simple_entries(), 1.0)
        second = build_call_tree(simple_entries(), 1.0)
        assert first["truncated"] is True
        assert first["nodes"] == 2
        assert tree_projection(first) == tree_projection(second)


class TestProjection:
    def test_strips_every_timing_field(self):
        projected = tree_projection(build_call_tree(simple_entries(), 1.0))
        assert set(projected) == {"functions", "nodes", "truncated", "roots"}

        def walk(node):
            assert set(node) == {"name", "file", "line", "calls", "children"}
            for child in node["children"]:
                walk(child)

        for root in projected["roots"]:
            walk(root)

    def test_identical_structure_different_times_projects_equal(self):
        slow = [
            entry(A, 1, 2.0, 0.8, [sub(B, 2, 1.2)]),
            entry(B, 2, 1.2, 0.8, [sub(C, 1, 0.4)]),
            entry(C, 1, 0.4, 0.4),
        ]
        fast = build_call_tree(simple_entries(), 1.0)
        assert tree_projection(fast) == tree_projection(
            build_call_tree(slow, 2.0)
        )


class TestSpeedscope:
    def test_document_is_valid_speedscope(self):
        doc = build_call_tree(simple_entries(), 1.0)
        out = speedscope_document([("build:traffic", doc)])
        assert out["$schema"].startswith("https://www.speedscope.app/")
        frames = out["shared"]["frames"]
        assert {frame["name"] for frame in frames} == {
            "build", "reduce", "substream"
        }
        (profile,) = out["profiles"]
        assert profile["type"] == "sampled"
        assert profile["name"] == "build:traffic"
        assert len(profile["samples"]) == len(profile["weights"])
        for stack in profile["samples"]:
            assert stack  # never empty
            assert all(0 <= index < len(frames) for index in stack)

    def test_weights_reproduce_the_profiled_time(self):
        doc = build_call_tree(simple_entries(), 1.0)
        (profile,) = speedscope_document([("p", doc)])["profiles"]
        assert sum(profile["weights"]) == pytest.approx(doc["profiled_s"])
        assert profile["endValue"] == pytest.approx(doc["profiled_s"])

    def test_frames_interned_across_profiles(self):
        doc = build_call_tree(simple_entries(), 1.0)
        out = speedscope_document([("p1", doc), ("p2", doc)])
        assert len(out["profiles"]) == 2
        assert len(out["shared"]["frames"]) == 3  # shared, not duplicated
