"""Span-scoped capture: patterns, one-per-thread, memory, off-path cost."""

import time

import pytest

from repro.prof import (
    DEFAULT_MEMORY_SPANS,
    DEFAULT_SPANS,
    build_peaks,
    disable_profiling,
    enable_profiling,
    match_span,
    profiled_spans,
    profiling,
    profiling_enabled,
)
from repro.telemetry import recent_spans, reset_trace, span
from repro.telemetry.trace import _PROFILE_HOOK


@pytest.fixture(autouse=True)
def _fresh():
    disable_profiling()
    reset_trace()
    yield
    disable_profiling()
    reset_trace()


def busy(n=2000):
    return sum(i * i for i in range(n))


class TestMatching:
    @pytest.mark.parametrize(
        ("name", "patterns", "matches"),
        [
            ("build:traffic", ("build:*",), True),
            ("build:traffic", ("build:traffic",), True),
            ("build:traffic", ("serve:request",), False),
            ("serve:request", DEFAULT_SPANS, True),
            ("artifact:table1", DEFAULT_SPANS, False),
            ("anything", ("*",), True),
        ],
    )
    def test_match_span(self, name, patterns, matches):
        assert match_span(name, patterns) is matches


class TestCapture:
    def test_matching_span_gets_a_call_tree(self):
        with profiling(spans=("work:*",)):
            with span("work:one") as node:
                busy()
        assert node.profile is not None
        doc = node.profile
        assert set(doc) >= {"duration_s", "coverage", "functions", "roots"}
        assert doc["functions"] > 0
        assert doc["roots"]

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        everywhere = {
            name for root in doc["roots"] for name in names(root)
        }
        assert any("busy" in name for name in everywhere)

    def test_non_matching_span_stays_plain(self):
        with profiling(spans=("build:*",)):
            with span("artifact:table1") as node:
                busy()
        assert node.profile is None
        assert node.peak_bytes is None

    def test_nested_matching_spans_capture_once(self):
        # sys.setprofile is per-thread: the outer capture already sees
        # the inner span's frames, so the inner span must not profile.
        with profiling(spans=("work:*",)):
            with span("work:outer") as outer:
                with span("work:inner") as inner:
                    busy()
        assert outer.profile is not None
        assert inner.profile is None

    def test_sequential_spans_each_capture(self):
        with profiling(spans=("work:*",)):
            with span("work:a") as a:
                busy()
            with span("work:b") as b:
                busy()
        assert a.profile is not None
        assert b.profile is not None

    def test_profiled_spans_walks_and_filters(self):
        with profiling(spans=("work:*",)):
            with span("outer"):
                with span("work:a"):
                    busy()
                with span("work:b"):
                    busy()
        found = profiled_spans(recent_spans())
        assert [node.name for node in found] == ["work:a", "work:b"]
        only_a = profiled_spans(recent_spans(), "work:a")
        assert [node.name for node in only_a] == ["work:a"]


class TestMemoryCapture:
    def test_memory_span_records_peak_bytes(self):
        with profiling(spans=(), memory_spans=("mem:*",)):
            with span("mem:alloc") as node:
                blob = bytearray(4_000_000)
                del blob
        assert node.peak_bytes is not None
        assert node.peak_bytes >= 4_000_000

    def test_inner_peak_folds_into_the_outer_span(self):
        # The peak register is process-global and reset per span; the
        # outer span must still see the inner allocation as its own.
        with profiling(spans=(), memory_spans=("mem:*",)):
            with span("mem:outer") as outer:
                with span("mem:inner") as inner:
                    blob = bytearray(4_000_000)
                    del blob
        assert inner.peak_bytes >= 4_000_000
        assert outer.peak_bytes >= inner.peak_bytes

    def test_build_span_publishes_the_layer_gauge(self):
        with profiling(spans=(), memory=True):
            assert profiling_enabled().memory_spans == DEFAULT_MEMORY_SPANS
            with span("build:proftest", layer="proftest"):
                blob = bytearray(1_000_000)
                del blob
        assert build_peaks().get("proftest", 0) >= 1_000_000


class TestEnableDisable:
    def test_disabled_is_the_default_and_uninstalls(self):
        assert profiling_enabled() is None
        enable_profiling(spans=("x",))
        assert profiling_enabled().spans == ("x",)
        disable_profiling()
        assert profiling_enabled() is None
        from repro.telemetry import trace as trace_mod

        assert trace_mod._PROFILE_HOOK is None

    def test_module_default_hook_is_none(self):
        # The import-time default: no hook, no profiler anywhere near
        # the span fast path (REP012 keeps the imports out too).
        assert _PROFILE_HOOK is None

    def test_disabled_overhead_is_one_none_check(self):
        # Timing 2% deltas is hopeless on shared runners; pin the
        # mechanism instead (no hook -> zero hook calls) plus a very
        # loose wall-clock sanity bound.
        calls = {"start": 0, "stop": 0}

        class Counting:
            def start(self, node):
                calls["start"] += 1
                return {}

            def stop(self, node, token):
                calls["stop"] += 1

        from repro.telemetry.trace import set_profile_hook

        set_profile_hook(Counting())
        with span("probe"):
            pass
        set_profile_hook(None)
        with span("probe"):
            pass
        assert calls == {"start": 1, "stop": 1}

        def run_spans(n=300):
            start = time.perf_counter()
            for _ in range(n):
                with span("overhead:probe"):
                    pass
            return time.perf_counter() - start

        run_spans(50)  # warm-up
        baseline = min(run_spans() for _ in range(3))
        enable_profiling(spans=("never:matches",))
        try:
            hooked = min(run_spans() for _ in range(3))
        finally:
            disable_profiling()
        # The hook exists but matches nothing: one dict/None check per
        # span.  Generous 2x bound -- this guards against accidentally
        # profiling everything, not against scheduler noise.
        assert hooked < baseline * 2 + 0.01
