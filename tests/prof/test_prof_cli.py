"""``repro prof`` / ``repro bench history``: determinism, exports, gates.

The determinism test runs the profiler in two *fresh interpreters*
(subprocesses): within one process a second run would see already-
imported modules and legitimately profile fewer import frames, which is
exactly the kind of run-to-run noise the timing-free projection is
supposed to survive -- but only across runs that did the same work.
``--parallel 0`` is load-bearing too: pool workers make the parent's
call counts scheduler-dependent.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import clear_caches
from repro.prof import disable_profiling, tree_projection
from repro.telemetry import reset_trace

REPO = Path(__file__).parents[2]

SCALE = ["--days", "3", "--sites", "60", "--probe-targets", "40",
         "--parallel", "0"]


@pytest.fixture(autouse=True)
def _fresh():
    disable_profiling()
    reset_trace()
    clear_caches()
    yield
    disable_profiling()
    reset_trace()


def run_prof(directory, name):
    out = directory / f"{name}.json"
    env = dict(os.environ)
    # The test process imports repro via pytest's pythonpath=["src"];
    # a fresh interpreter needs the same root on its path.
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(REPO / "src"), env.get("PYTHONPATH")) if part
    )
    subprocess.run(
        [sys.executable, "-m", "repro", "prof", "contrast",
         *SCALE, "--format", "tree", "-o", str(out)],
        cwd=REPO, check=True, capture_output=True, text=True, timeout=600,
        env=env,
    )
    return json.loads(out.read_text())


@pytest.fixture(scope="module")
def tree_runs(tmp_path_factory):
    directory = tmp_path_factory.mktemp("prof-cli")
    return run_prof(directory, "a"), run_prof(directory, "b")


class TestDeterminism:
    def test_two_same_seed_runs_project_identically(self, tree_runs):
        first, second = tree_runs
        assert first["count"] >= 1
        assert first["count"] == second["count"]
        for left, right in zip(first["profiles"], second["profiles"]):
            assert left["span"] == right["span"]
            assert tree_projection(left["profile"]) == tree_projection(
                right["profile"]
            ), f"call tree for {left['span']} not reproducible"

    def test_coverage_accounts_for_the_span_time(self, tree_runs):
        first, _ = tree_runs
        for profile in first["profiles"]:
            assert profile["profile"]["coverage"] >= 0.95, profile["span"]


class TestProfCli:
    def test_speedscope_export_is_valid(self, capsys):
        from repro.__main__ import main

        assert main(["prof", "contrast", *SCALE,
                     "--format", "speedscope"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = document["shared"]["frames"]
        assert frames
        assert document["profiles"]
        for profile in document["profiles"]:
            assert profile["type"] == "sampled"
            assert len(profile["samples"]) == len(profile["weights"])
            assert profile["endValue"] == pytest.approx(
                sum(profile["weights"]), abs=1e-4
            )
            for stack in profile["samples"]:
                assert all(0 <= index < len(frames) for index in stack)

    def test_memory_flag_attaches_build_peaks(self, capsys):
        from repro.__main__ import main

        assert main(["prof", "contrast", *SCALE, "--memory",
                     "--spans", "build:*"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] >= 1
        assert any(
            profile["peak_bytes"] and profile["peak_bytes"] > 0
            for profile in document["profiles"]
        )

    def test_unknown_artifact_is_a_usage_error(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["prof", "nope"])
        assert excinfo.value.code == 2

    def test_empty_pattern_list_is_a_usage_error(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["prof", "contrast", "--spans", ","])


class TestBenchHistoryCli:
    SEEDED = REPO / "benchmarks" / "results" / "BENCH_history.jsonl"

    def test_seeded_history_reports_byte_identical_and_quiet(self, capsys):
        from repro.__main__ import main

        argv = ["bench", "history", "--history", str(self.SEEDED),
                "--format", "json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert report["events"]["total"] == 0
        assert report["runs"] >= 1

    def test_text_format_says_silence_is_valid(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "history", "--history", str(self.SEEDED)]) == 0
        assert "silence is valid data" in capsys.readouterr().out

    def _regressive_history(self, tmp_path):
        from repro.prof import append_history, history_record

        path = tmp_path / "history.jsonl"
        for value in (10.0, 10.0, 10.0, 10.0, 20.0):
            append_history(path, history_record(
                "perf_smoke", {"days": 14}, {"build:traffic": value}
            ))
        return path

    def test_fail_on_gates_critical_regressions(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._regressive_history(tmp_path)
        assert main(["bench", "history", "--history", str(path)]) == 0
        assert main(["bench", "history", "--history", str(path),
                     "--fail-on", "critical"]) == 1

    def test_improvements_never_fail(self, tmp_path, capsys):
        from repro.prof import append_history, history_record
        from repro.__main__ import main

        path = tmp_path / "history.jsonl"
        for value in (10.0, 10.0, 10.0, 10.0, 1.0):  # got faster
            append_history(path, history_record(
                "perf_smoke", {"days": 14}, {"build:traffic": value}
            ))
        assert main(["bench", "history", "--history", str(path),
                     "--fail-on", "watch"]) == 0

    def test_output_writes_the_ci_artifact(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "report.json"
        assert main(["bench", "history", "--history", str(self.SEEDED),
                     "--format", "json", "-o", str(out)]) == 0
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(capsys.readouterr().out)

    def test_missing_history_is_an_empty_valid_report(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["bench", "history", "--history",
                     str(tmp_path / "absent.jsonl"), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"] == 0
        assert report["events"]["total"] == 0
