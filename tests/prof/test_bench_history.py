"""The bench-history sentinel: records, grouping, verdicts, golden."""

import json
import os
from pathlib import Path

import pytest

from repro.prof import (
    HISTORY_SCHEMA,
    append_history,
    detect_history,
    higher_is_better,
    history_record,
    load_history,
    render_history_text,
    worst_regression_severity,
)

GOLDEN = Path(__file__).parents[1] / "api" / "golden"

CONFIG = {"days": 14, "sites": 300, "seed": 42}


def runs(values_by_phase, kind="perf_smoke"):
    """One record per run index, phases zipped from parallel series."""
    length = len(next(iter(values_by_phase.values())))
    return [
        history_record(
            kind,
            CONFIG,
            {phase: series[index] for phase, series in values_by_phase.items()},
            recorded_at=f"2026-08-0{index + 1}T00:00:00Z",
        )
        for index in range(length)
    ]


class TestRecords:
    def test_record_is_schema_stamped_and_sorted(self):
        record = history_record(
            "perf_smoke", {"sites": 300, "days": 14}, {"b": 2.0, "a": 1.23456}
        )
        assert record["schema"] == HISTORY_SCHEMA
        assert list(record["config"]) == ["days", "sites"]
        assert record["phases"] == {"a": 1.2346, "b": 2.0}  # 4dp

    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = history_record("perf_smoke", CONFIG, {"x": 1.0})
        second = history_record("serve_load", CONFIG, {"y": 2.0})
        append_history(path, first)
        append_history(path, second)
        records, skipped = load_history(path)
        assert records == [first, second]
        assert skipped == 0

    def test_corrupt_and_foreign_lines_skip_not_crash(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, history_record("perf_smoke", CONFIG, {"x": 1.0}))
        with path.open("a") as handle:
            handle.write("not json\n")
            handle.write('{"schema": 999, "phases": {}}\n')
            handle.write("\n")  # blank lines are not corruption
        records, skipped = load_history(path)
        assert len(records) == 1
        assert skipped == 2

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == ([], 0)

    def test_direction_flips_for_throughput_phases(self):
        assert higher_is_better("serve:cached_rps")
        assert not higher_is_better("build:traffic")
        assert not higher_is_better("serve:cached_p99_ms")


class TestDetect:
    def test_flat_history_is_silent(self):
        report = detect_history(runs({"build:traffic": [10.0] * 6}))
        assert report["events"]["total"] == 0
        assert worst_regression_severity(report) is None
        assert "silence is valid data" in render_history_text(report)

    def test_duration_spike_is_a_critical_regression(self):
        report = detect_history(
            runs({"build:traffic": [10.0, 10.0, 10.0, 10.0, 20.0]})
        )
        (event,) = report["groups"][0]["events"]
        assert event["phase"] == "build:traffic"
        assert event["run"] == 4
        assert event["direction"] == "up"
        assert event["severity"] == "critical"
        assert event["regression"] is True
        assert worst_regression_severity(report) == "critical"

    def test_throughput_drop_regresses_but_gain_improves(self):
        drop = detect_history(
            runs({"serve:cached_rps": [1000.0, 1000.0, 1000.0, 1000.0, 500.0]})
        )
        (event,) = drop["groups"][0]["events"]
        assert (event["direction"], event["regression"]) == ("down", True)
        gain = detect_history(
            runs({"serve:cached_rps": [1000.0, 1000.0, 1000.0, 1000.0, 2000.0]})
        )
        (event,) = gain["groups"][0]["events"]
        assert (event["direction"], event["regression"]) == ("up", False)
        assert worst_regression_severity(gain) is None
        assert "improvement" in render_history_text(gain)

    def test_different_configs_never_share_a_baseline(self):
        # Four fast runs at one scale then one slow run at another:
        # with a shared baseline the slow run would fire critical.
        fast = runs({"total:wall": [10.0] * 4})
        other = history_record("perf_smoke", {**CONFIG, "days": 99},
                               {"total:wall": 20.0})
        report = detect_history([*fast, other])
        assert len(report["groups"]) == 2
        assert report["events"]["total"] == 0

    def test_kinds_never_share_a_baseline(self):
        mixed = [
            *runs({"total:wall": [10.0] * 4}, kind="perf_smoke"),
            history_record("serve_load", CONFIG, {"total:wall": 20.0}),
        ]
        report = detect_history(mixed)
        assert report["events"]["total"] == 0

    def test_warmup_runs_never_fire(self):
        # min_history trailing-baseline warm-up: too-short series are
        # silent even when wildly different.
        report = detect_history(runs({"build:traffic": [1.0, 50.0]}))
        assert report["events"]["total"] == 0

    def test_report_is_deterministic_and_stamp_free(self):
        records = runs(
            {"build:traffic": [10.0, 10.0, 10.0, 10.0, 20.0],
             "serve:cached_rps": [1000.0, 990.0, 1010.0, 1000.0, 400.0]}
        )
        first = json.dumps(detect_history(records), sort_keys=True)
        second = json.dumps(detect_history(records), sort_keys=True)
        assert first == second


class TestGolden:
    def test_report_matches_golden_byte_for_byte(self):
        """The whole report document, pinned: it must carry no run-time
        stamps, so the golden is the exact bytes, not just a schema."""
        records = runs(
            {
                "build:traffic": [10.0, 10.1, 9.9, 10.0, 20.0],
                "build:census": [5.0, 5.0, 5.0, 5.0, 5.0],
                "serve:cached_rps": [1000.0, 1005.0, 995.0, 1000.0, 400.0],
            }
        )
        report = detect_history(records, skipped=1)
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
        golden_path = GOLDEN / "bench_history.json"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.mkdir(exist_ok=True)
            golden_path.write_text(text)
        assert golden_path.is_file(), (
            "missing golden tests/api/golden/bench_history.json; generate "
            "it with REPRO_UPDATE_GOLDEN=1"
        )
        assert text == golden_path.read_text(), (
            "the bench-history report drifted from tests/api/golden/"
            "bench_history.json; if intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1 and commit the diff"
        )


class TestSeededHistory:
    def test_committed_history_file_loads_clean_and_quiet(self):
        path = Path(__file__).parents[2] / "benchmarks" / "results" / \
            "BENCH_history.jsonl"
        records, skipped = load_history(path)
        assert records, "seed history missing or unreadable"
        assert skipped == 0
        report = detect_history(records, skipped=skipped)
        # One seeded run cannot clear min_history: byte-identical,
        # event-free reports are the acceptance contract.
        assert report["events"]["total"] == 0
        assert json.dumps(report, sort_keys=True) == json.dumps(
            detect_history(records, skipped=skipped), sort_keys=True
        )


@pytest.mark.parametrize("phase", ["total:wall", "serve:revalidate_rps"])
def test_round_trip_keeps_four_decimals(phase):
    record = history_record("perf_smoke", CONFIG, {phase: 1.23456789})
    assert record["phases"][phase] == 1.2346
