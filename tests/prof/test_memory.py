"""Memory accounting: RSS/GC gauges, tracemalloc span-peak nesting."""

import gc

import pytest

from repro.prof.memory import (
    build_peaks,
    gc_counts,
    process_document,
    record_build_peak,
    refresh_process_gauges,
    rss_bytes,
    span_memory_start,
    span_memory_stop,
    start_tracing,
    stop_tracing,
)
from repro.telemetry import registry


class TestProcessGauges:
    def test_rss_is_a_positive_byte_count(self):
        rss = rss_bytes()
        assert rss is not None
        assert rss > 1_000_000  # a Python process is megabytes, not bytes

    def test_gc_counts_cover_all_generations(self):
        counts = gc_counts()
        assert list(counts) == ["0", "1", "2"]
        assert all(value >= 0 for value in counts.values())

    def test_refresh_sets_the_rss_gauge(self):
        refresh_process_gauges()
        rendered = registry().render_prometheus()
        line = next(
            row for row in rendered.splitlines()
            if row.startswith("process_rss_bytes ")
        )
        assert float(line.split()[1]) > 0

    def test_refresh_moves_gc_counter_like_a_counter(self):
        refresh_process_gauges()

        def total():
            return sum(
                value
                for (metric, _), value in _samples()
                if metric == "gc_collections_total"
            )

        def _samples():
            rendered = registry().render_prometheus().splitlines()
            for row in rendered:
                if row.startswith("gc_collections_total{"):
                    labels, value = row.rsplit(" ", 1)
                    yield (("gc_collections_total", labels), float(value))

        before = total()
        gc.collect()
        refresh_process_gauges()
        assert total() >= before  # monotone across refreshes

    def test_process_document_shape(self):
        document = process_document()
        assert set(document) == {"rss_bytes", "gc_collections", "tracemalloc"}
        assert isinstance(document["tracemalloc"], bool)

    def test_build_peaks_roundtrip(self):
        record_build_peak("memtest", 12345)
        assert build_peaks()["memtest"] == 12345


class TestSpanPeaks:
    def test_peak_covers_the_span_allocation(self):
        start_tracing()
        try:
            token = span_memory_start()
            blob = bytearray(3_000_000)
            del blob
            peak = span_memory_stop(token)
        finally:
            stop_tracing()
        assert peak is not None
        assert peak >= 3_000_000

    def test_nested_peaks_fold_into_ancestors(self):
        # The inner span resets the global peak register; the outer
        # span's answer must still include the inner allocation.
        start_tracing()
        try:
            outer = span_memory_start()
            inner = span_memory_start()
            blob = bytearray(3_000_000)
            del blob
            inner_peak = span_memory_stop(inner)
            outer_peak = span_memory_stop(outer)
        finally:
            stop_tracing()
        assert inner_peak >= 3_000_000
        assert outer_peak >= inner_peak

    def test_stop_without_tracing_is_none_not_crash(self):
        stop_tracing()
        if process_document()["tracemalloc"]:
            pytest.skip("tracemalloc enabled outside repro.prof")
        assert span_memory_stop([]) is None
        assert span_memory_start() == []
