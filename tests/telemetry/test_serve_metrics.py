"""The observability serving surface: /metrics, /v1/trace, healthz detail."""

import json
import os
from pathlib import Path

import pytest

from repro.api import StudyConfig
from repro.serve import ArtifactService
from repro.serve.service import endpoint_label
from repro.store import set_store
from repro.telemetry import registry, reset_trace

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)

GOLDEN = Path(__file__).parents[1] / "api" / "golden"


@pytest.fixture(autouse=True)
def _no_ambient_store():
    set_store(None)
    yield
    set_store(None)


@pytest.fixture(scope="module")
def service():
    return ArtifactService(CONFIG, store=None)


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, service):
        service.handle("GET", "/healthz")  # guarantee at least one request
        response = service.handle("GET", "/metrics")
        assert response.status == 200
        assert response.header("Content-Type").startswith(
            "text/plain; version=0.0.4"
        )
        body = response.body.decode("utf-8")
        for line in body.splitlines():
            assert line.startswith("#") or " " in line  # name{labels} value
        assert 'serve_requests_total{endpoint="/healthz"}' in body

    def test_hot_hits_and_304s_show_up_as_counters(self, service):
        hits = registry().get("serve_hot_cache_hits_total")
        revalidated = registry().get("serve_not_modified_total")
        first = service.handle("GET", "/v1/artifact/obs_availability")
        assert first.status == 200
        before_hits, before_304 = hits.value(), revalidated.value()
        again = service.handle("GET", "/v1/artifact/obs_availability")
        assert again.status == 200
        assert hits.value() > before_hits
        etag = first.header("ETag")
        not_modified = service.handle(
            "GET", "/v1/artifact/obs_availability", {"If-None-Match": etag}
        )
        assert not_modified.status == 304
        assert revalidated.value() == before_304 + 1
        scrape = service.handle("GET", "/metrics").body.decode("utf-8")
        assert "serve_hot_cache_hits_total" in scrape
        assert "serve_not_modified_total" in scrape

    def test_metrics_takes_no_parameters(self, service):
        assert service.handle("GET", "/metrics?format=json").status == 400

    def test_request_latency_histogram_observes(self, service):
        histogram = registry().get("serve_request_seconds")
        before = sum(s["count"] for _, s in histogram.sample_items())
        service.handle("GET", "/healthz")
        after = sum(s["count"] for _, s in histogram.sample_items())
        assert after == before + 1

    def test_healthz_carries_the_telemetry_section(self, service):
        document = service.handle("GET", "/healthz").json()
        telemetry = document["telemetry"]
        assert telemetry["metrics"] == "/metrics"
        assert telemetry["trace"] == "/v1/trace"
        assert isinstance(telemetry["degraded_total"], dict)
        assert isinstance(telemetry["write_behind_failures"], int)


class TestEndpointLabels:
    def test_routes_collapse_to_families(self):
        assert endpoint_label("/v1/artifact/table1") == "/v1/artifact/<name>"
        assert endpoint_label("/v1/artifact/zzz") == "/v1/artifact/<name>"
        assert endpoint_label("/v1/contrast/DE") == "/v1/contrast/<country>"
        assert endpoint_label("/metrics") == "/metrics"
        assert endpoint_label("/v2/nope") == "<other>"

    def test_label_space_stays_bounded(self, service):
        for name in ("table1", "table2", "fig5"):
            service.handle("GET", f"/v1/artifact/{name}")
        requests = registry().get("serve_requests_total")
        families = {key[0] for key, _ in requests.sample_items()}
        assert "/v1/artifact/<name>" in families
        assert not any(family.startswith("/v1/artifact/t") for family in families)


class TestTraceEndpoint:
    def test_trace_document_shape(self, service):
        reset_trace()
        assert service.handle("GET", "/v1/artifact/table1").status == 200
        response = service.handle("GET", "/v1/trace?last=5")
        assert response.status == 200
        document = response.json()
        assert document["last"] == 5
        assert document["count"] == len(document["spans"]) >= 1
        request_span = document["spans"][0]
        assert request_span["name"] == "serve:request"
        assert request_span["labels"]["endpoint"] == "/v1/artifact/<name>"
        assert request_span["labels"]["status"] == "200"

    def test_trace_rejects_bad_parameters(self, service):
        assert service.handle("GET", "/v1/trace?last=soon").status == 400
        assert service.handle("GET", "/v1/trace?last=-1").status == 400
        assert service.handle("GET", "/v1/trace?page=2").status == 400

    def test_trace_responses_are_never_cached(self, service):
        service.handle("GET", "/healthz")
        response = service.handle("GET", "/v1/trace?last=1")
        assert response.status == 200
        assert response.header("ETag") is None
        assert response.header("Cache-Control") is None

    def test_wire_schema_matches_golden(self, service):
        """The /v1/trace envelope + span-node schema, blessed.

        Durations vary run to run, so the golden pins JSON *types* and
        key order, not values -- the same reduction the artifact
        schemas use.
        """
        reset_trace()
        assert service.handle("GET", "/v1/artifact/table1").status == 200
        document = service.handle("GET", "/v1/trace?last=3").json()

        def node_schema(node: dict) -> dict:
            return {
                "keys": list(node),
                "name": "str",
                "duration_ms": "float",
                "self_ms": "float",
                "labels": "object[str]",
                "children": [node_schema(child) for child in node["children"]],
            }

        schema = {
            "keys": list(document),
            "last": "int|null",
            "count": "int",
            "span_node": node_schema(document["spans"][0]),
        }
        # Depth varies with cache warmth; pin the node shape, not the tree.
        schema["span_node"]["children"] = "array[span_node]"
        golden_path = GOLDEN / "trace.json"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            golden_path.write_text(
                json.dumps(schema, indent=2, sort_keys=True) + "\n"
            )
        assert golden_path.is_file(), (
            "missing golden trace schema; generate with REPRO_UPDATE_GOLDEN=1"
        )
        assert schema == json.loads(golden_path.read_text()), (
            "the /v1/trace wire format drifted from tests/api/golden/"
            "trace.json; if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
        )
        for node in document["spans"]:
            assert isinstance(node["duration_ms"], (int, float))
            assert all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in node["labels"].items()
            )
