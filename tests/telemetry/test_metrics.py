"""Instrument semantics: typing, label keying, snapshot/merge, views."""

import json
import os
from collections import Counter
from pathlib import Path

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    CounterView,
    MetricsRegistry,
    counter_view,
    registry,
)

GOLDEN = Path(__file__).parent / "golden"


class TestCounter:
    def test_monotonic_increments_accumulate(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations", ("kind",))
        c.inc(kind="read")
        c.inc(2, kind="read")
        c.inc(kind="write")
        assert c.value(kind="read") == 3
        assert c.value(kind="write") == 1
        assert c.value(kind="never") == 0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelname_set_is_exact(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations", ("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing the declared label
        with pytest.raises(ValueError):
            c.inc(kind="read", extra="nope")


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("entries", "cache entries")
        g.set(5)
        g.set(3)
        assert g.value() == 3


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("seconds", "durations", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        ((_, sample),) = h.sample_items()
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)
        assert sample["buckets"] == [1, 1, 1]  # per-bucket, +Inf last

    def test_default_buckets_cover_sub_ms_to_10s(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        first = reg.counter("ops_total", "operations", ("kind",))
        again = reg.counter("ops_total", "operations", ("kind",))
        assert first is again

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations")
        with pytest.raises(ValueError):
            reg.gauge("ops_total", "operations")

    def test_labelname_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("kind",))
        with pytest.raises(ValueError):
            reg.counter("ops_total", "operations", ("other",))

    def test_process_registry_is_a_singleton(self):
        assert registry() is registry()

    def test_snapshot_roundtrips_through_merge(self):
        src = MetricsRegistry()
        src.counter("ops_total", "operations", ("kind",)).inc(2, kind="read")
        src.gauge("entries", "entries").set(7)
        src.histogram("seconds", "durations", buckets=(1.0,)).observe(0.5)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_adds_counters_and_histograms_last_wins_gauges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.counter("ops_total", "operations").inc(n)
            reg.gauge("entries", "entries").set(n)
            reg.histogram("seconds", "durations", buckets=(1.0,)).observe(n)
        a.merge(b.snapshot())
        assert a.get("ops_total").value() == 3
        assert a.get("entries").value() == 2
        ((_, sample),) = a.get("seconds").sample_items()
        assert sample["count"] == 2 and sample["sum"] == pytest.approx(3.0)

    def test_merge_rejects_bucket_bound_mismatch(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("seconds", "durations", buckets=(1.0,)).observe(0.5)
        b.histogram("seconds", "durations", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_is_order_independent_bit_identical(self):
        # Dyadic durations (n/4) add exactly in any order; real parallel
        # runs merge in task-index order anyway (procpool iterates
        # futures by index), which pins bit-identity for float sums too.
        shards = []
        for n in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("ops_total", "operations", ("kind",)).inc(n, kind=f"k{n}")
            reg.histogram("seconds", "durations").observe(n / 4)
            shards.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in shards:
            forward.merge(snap)
        for snap in reversed(shards):
            backward.merge(snap)
        assert json.dumps(forward.snapshot(), sort_keys=True) == json.dumps(
            backward.snapshot(), sort_keys=True
        )

    def test_reset_zeroes_samples_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "operations")
        c.inc(4)
        reg.reset()
        assert reg.get("ops_total") is c
        assert c.value() == 0


class TestCounterView:
    def make(self):
        reg = MetricsRegistry()
        return counter_view(reg.counter("events_total", "events", ("event",)))

    def test_mapping_semantics_match_counter(self):
        view = self.make()
        view["retry:store"] += 1
        view["retry:store"] += 1
        view["gaveup:store"] += 1
        assert view["retry:store"] == 2
        assert view["missing"] == 0  # defaultdict-style, like Counter
        assert dict(view) == {"retry:store": 2, "gaveup:store": 1}
        assert view == Counter({"retry:store": 2, "gaveup:store": 1})

    def test_copy_detaches_from_the_live_instrument(self):
        view = self.make()
        view["a"] += 1
        frozen = view.copy()
        view["a"] += 1
        assert frozen == Counter({"a": 1})
        assert view["a"] == 2

    def test_clear_resets_the_instrument(self):
        view = self.make()
        view["a"] += 3
        view.clear()
        assert dict(view) == {}
        assert len(view) == 0

    def test_is_a_counterview(self):
        assert isinstance(self.make(), CounterView)


class TestPrometheusGolden:
    """The full text exposition, blessed: REPRO_UPDATE_GOLDEN=1 to update."""

    def build(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("serve_requests_total", "requests served", ("endpoint",))
        c.inc(3, endpoint="/healthz")
        c.inc(1, endpoint='/v1/artifact/"quoted"\npath\\x')  # escaping
        reg.gauge("hot_cache_entries", "hot cache size").set(12)
        h = reg.histogram("request_seconds", "latency", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_rendered_exposition_matches_golden(self):
        rendered = self.build().render_prometheus()
        golden_path = GOLDEN / "metrics.prom"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.mkdir(exist_ok=True)
            golden_path.write_text(rendered)
        assert golden_path.is_file(), (
            "missing golden exposition; generate with REPRO_UPDATE_GOLDEN=1"
        )
        assert rendered == golden_path.read_text(), (
            "the Prometheus exposition drifted from "
            "tests/telemetry/golden/metrics.prom; if intentional, regenerate "
            "with REPRO_UPDATE_GOLDEN=1 and commit the diff"
        )

    def test_exposition_shape(self):
        rendered = self.build().render_prometheus()
        lines = rendered.splitlines()
        assert rendered.endswith("\n")
        for name, kind in (
            ("serve_requests_total", "counter"),
            ("hot_cache_entries", "gauge"),
            ("request_seconds", "histogram"),
        ):
            assert f"# TYPE {name} {kind}" in lines
        assert 'request_seconds_bucket{le="+Inf"} 4' in lines
        assert "request_seconds_count 4" in lines
