"""Span-tree semantics: nesting, timing attribution, exports."""

import threading
import time

import pytest

from repro.telemetry import (
    chrome_trace,
    current_span,
    recent_spans,
    reset_trace,
    span,
    span_tree,
)


@pytest.fixture(autouse=True)
def _fresh_trace():
    reset_trace()
    yield
    reset_trace()


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self):
        with span("outer") as outer:
            with span("inner:a"):
                pass
            with span("inner:b"):
                pass
        assert [child.name for child in outer.children] == ["inner:a", "inner:b"]
        (root,) = recent_spans()
        assert root is outer

    def test_current_span_tracks_the_stack(self):
        assert current_span() is None
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_stack_pops_even_when_the_body_raises(self):
        with pytest.raises(RuntimeError):
            with span("outer"):
                raise RuntimeError("boom")
        assert current_span() is None
        (root,) = recent_spans()
        assert root.duration_s >= 0

    def test_self_time_excludes_children(self):
        with span("outer") as outer:
            with span("inner"):
                time.sleep(0.01)
        assert outer.self_s == pytest.approx(
            outer.duration_s - outer.children[0].duration_s
        )

    def test_labels_are_stringified_onto_the_span(self):
        with span("build:traffic", layer="traffic", scale=4) as s:
            pass
        assert s.labels == {"layer": "traffic", "scale": "4"}


class TestDiscard:
    def test_discarded_root_never_reaches_the_ring(self):
        with span("probe") as probe:
            probe.discard()
        assert recent_spans() == []

    def test_discarded_child_is_dropped_from_the_parent(self):
        with span("outer") as outer:
            with span("probe") as probe:
                probe.discard()
            with span("kept"):
                pass
        assert [child.name for child in outer.children] == ["kept"]


class TestRing:
    def test_recent_spans_returns_oldest_first_with_tail_slice(self):
        for n in range(5):
            with span(f"root:{n}"):
                pass
        assert [s.name for s in recent_spans()] == [f"root:{n}" for n in range(5)]
        assert [s.name for s in recent_spans(last=2)] == ["root:3", "root:4"]

    def test_threads_record_independent_roots(self):
        def work():
            with span("thread-root"):
                with span("thread-child"):
                    pass

        with span("main-root"):
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        names = sorted(s.name for s in recent_spans())
        assert names == ["main-root", "thread-root"]  # no cross-thread nesting


class TestExports:
    def test_span_tree_shape(self):
        with span("outer", kind="test"):
            with span("inner"):
                pass
        (root,) = recent_spans()
        tree = span_tree(root)
        assert set(tree) == {"name", "duration_ms", "self_ms", "labels", "children"}
        assert tree["name"] == "outer"
        assert tree["labels"] == {"kind": "test"}
        assert tree["duration_ms"] >= tree["self_ms"] >= 0
        (child,) = tree["children"]
        assert child["name"] == "inner" and child["children"] == []

    def test_chrome_trace_emits_complete_events_in_relative_us(self):
        with span("outer"):
            with span("inner"):
                pass
        document = chrome_trace(recent_spans())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["ts"] >= 0 and event["dur"] >= 0
        outer, inner = events
        assert outer["ts"] == 0.0  # relative to the earliest span
        assert inner["ts"] >= outer["ts"]
        # 0.5 us slack: ts/dur round to 0.1 us each
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 0.5

    def test_chrome_trace_separates_roots_by_tid(self):
        with span("first"):
            pass
        with span("second"):
            pass
        events = chrome_trace(recent_spans())["traceEvents"]
        assert [e["tid"] for e in events] == [1, 2]
