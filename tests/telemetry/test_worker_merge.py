"""Worker metric shipping: a pooled map merges to the sequential totals.

``map_in_pool`` wraps every shard in ``_metered_call``, which resets the
worker's registry (dropping fork-inherited samples) and ships the
shard's own delta back inside the map result; the parent merges each
snapshot in task-index order.  The whole point is that counters bumped
inside worker processes are indistinguishable from counters bumped
inline -- so the pooled run must leave *bit-identical* samples to the
sequential one.
"""

import json

import pytest

from repro.telemetry import registry
from repro.util.procpool import map_in_pool, reset_pool_fallback_warnings

#: Unique to this module so parallel/sequential deltas are isolatable.
COUNTER = "testwork_units_total"
HISTOGRAM = "testwork_seconds"


def _work(task: int) -> int:
    """One shard: deterministic counter bumps + dyadic observations."""
    reg = registry()
    reg.counter(COUNTER, "test work units", ("kind",)).inc(
        task + 1, kind=f"k{task % 2}"
    )
    # Dyadic values (n/8) add exactly, so float sums cannot wobble.
    reg.histogram(HISTOGRAM, "test work durations").observe((task + 1) / 8)
    return task * task


def _clear_test_instruments() -> None:
    for name in (COUNTER, HISTOGRAM):
        instrument = registry().get(name)
        if instrument is not None:
            instrument.clear()


def _test_samples() -> dict:
    out = {}
    for name in (COUNTER, HISTOGRAM):
        instrument = registry().get(name)
        out[name] = instrument.sample_items() if instrument is not None else []
    return out


@pytest.fixture(autouse=True)
def _isolated():
    reset_pool_fallback_warnings()
    _clear_test_instruments()
    yield
    _clear_test_instruments()
    reset_pool_fallback_warnings()


def test_pooled_metrics_merge_bit_identical_to_sequential():
    tasks = list(range(6))

    results = map_in_pool(_work, tasks, workers=2, context="telemetry test")
    if results is None:
        pytest.skip("this environment cannot run a process pool")
    assert results == [task * task for task in tasks]
    pooled = _test_samples()

    _clear_test_instruments()
    assert [_work(task) for task in tasks] == results
    sequential = _test_samples()

    assert json.dumps(pooled, sort_keys=True, default=list) == json.dumps(
        sequential, sort_keys=True, default=list
    )


def test_worker_reset_ships_only_the_shard_delta():
    """Fork-inherited parent samples must not be double-merged back."""
    registry().counter(COUNTER, "test work units", ("kind",)).inc(
        100, kind="preexisting"
    )
    results = map_in_pool(_work, [0], workers=2, context="telemetry test")
    if results is None:
        pytest.skip("this environment cannot run a process pool")
    counter = registry().get(COUNTER)
    assert counter.value(kind="preexisting") == 100  # not 200
    assert counter.value(kind="k0") == 1
