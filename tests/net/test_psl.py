"""Tests for the Public Suffix List engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.psl import PublicSuffixList, default_psl

_LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)


class TestPublicSuffix:
    def test_simple_tld(self):
        psl = default_psl()
        assert psl.public_suffix("example.com") == "com"
        assert psl.public_suffix("www.example.com") == "com"

    def test_second_level_registry(self):
        psl = default_psl()
        assert psl.public_suffix("example.co.uk") == "co.uk"
        assert psl.public_suffix("www.example.co.uk") == "co.uk"

    def test_wildcard_rule(self):
        psl = default_psl()
        # "*.ck" makes any second-level label under ck a public suffix.
        assert psl.public_suffix("example.anything.ck") == "anything.ck"

    def test_exception_rule(self):
        psl = default_psl()
        # "!www.ck" exempts www.ck: its suffix is just "ck".
        assert psl.public_suffix("www.ck") == "ck"

    def test_unlisted_tld_uses_implicit_star(self):
        psl = default_psl()
        assert psl.public_suffix("example.zz") == "zz"

    def test_domain_equal_to_suffix(self):
        psl = default_psl()
        assert psl.public_suffix("com") == "com"

    def test_private_section_cloud_suffix(self):
        psl = default_psl()
        assert psl.public_suffix("tenant.s3.amazonaws.example") == "s3.amazonaws.example"

    def test_malformed(self):
        with pytest.raises(ValueError):
            default_psl().public_suffix("bad..name")


class TestEtldPlusOne:
    def test_basic(self):
        psl = default_psl()
        assert psl.etld_plus_one("www.example.com") == "example.com"
        assert psl.etld_plus_one("a.b.c.example.co.uk") == "example.co.uk"

    def test_suffix_itself_has_no_etld1(self):
        psl = default_psl()
        assert psl.etld_plus_one("com") is None
        assert psl.etld_plus_one("co.uk") is None

    def test_exception_rule_etld1(self):
        psl = default_psl()
        # www.ck is registrable because of the exception rule.
        assert psl.etld_plus_one("www.ck") == "www.ck"
        assert psl.etld_plus_one("sub.www.ck") == "www.ck"

    def test_cloud_tenant_is_own_site(self):
        psl = default_psl()
        assert (
            psl.etld_plus_one("assets.tenant.s3.amazonaws.example")
            == "tenant.s3.amazonaws.example"
        )

    def test_case_and_trailing_dot(self):
        psl = default_psl()
        assert psl.etld_plus_one("WWW.Example.COM.") == "example.com"


class TestSameSite:
    def test_same_site(self):
        psl = default_psl()
        assert psl.same_site("www.example.com", "api.example.com")
        assert not psl.same_site("www.example.com", "www.other.com")

    def test_suffix_never_same_site(self):
        psl = default_psl()
        assert not psl.same_site("com", "com")

    def test_different_registries(self):
        psl = default_psl()
        assert not psl.same_site("example.co.uk", "example.com")


class TestCustomRules:
    def test_add_rule(self):
        psl = PublicSuffixList.from_rules(("com",))
        psl.add_rule("platform.com")
        assert psl.public_suffix("user.platform.com") == "platform.com"
        assert psl.etld_plus_one("a.user.platform.com") == "user.platform.com"

    def test_longest_rule_wins(self):
        psl = PublicSuffixList.from_rules(("com", "cdn.com", "edge.cdn.com"))
        assert psl.public_suffix("x.edge.cdn.com") == "edge.cdn.com"
        assert psl.public_suffix("x.cdn.com") == "cdn.com"

    def test_malformed_rule(self):
        with pytest.raises(ValueError):
            PublicSuffixList.from_rules(("bad..rule",))

    @given(st.lists(_LABEL, min_size=2, max_size=5))
    def test_etld1_is_suffix_plus_one_label(self, labels):
        """For any domain, eTLD+1 = one label + the public suffix."""
        psl = default_psl()
        domain = ".".join(labels)
        suffix = psl.public_suffix(domain)
        etld1 = psl.etld_plus_one(domain)
        if etld1 is None:
            assert domain == suffix
        else:
            assert etld1.endswith(suffix)
            assert len(etld1.split(".")) == len(suffix.split(".")) + 1
            assert domain.endswith(etld1)
