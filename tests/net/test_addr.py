"""Tests for IP address, prefix, and pool primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import AddressPool, Family, IpAddress, Prefix


class TestFamily:
    def test_bits(self):
        assert Family.V4.bits == 32
        assert Family.V6.bits == 128

    def test_max_value(self):
        assert Family.V4.max_value == 2**32 - 1
        assert Family.V6.max_value == 2**128 - 1


class TestIpAddress:
    def test_parse_v4(self):
        addr = IpAddress.parse("192.0.2.1")
        assert addr.family is Family.V4
        assert addr.value == (192 << 24) | (0 << 16) | (2 << 8) | 1
        assert str(addr) == "192.0.2.1"

    def test_parse_v6(self):
        addr = IpAddress.parse("2001:db8::1")
        assert addr.family is Family.V6
        assert addr.is_v6
        assert str(addr) == "2001:db8::1"

    def test_roundtrip(self):
        for text in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "::", "ff02::1"]:
            assert str(IpAddress.parse(text)) == text

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            IpAddress(Family.V4, 2**32)
        with pytest.raises(ValueError):
            IpAddress(Family.V4, -1)

    def test_bit_extraction(self):
        addr = IpAddress.parse("128.0.0.1")
        assert addr.bit(0) == 1
        assert addr.bit(1) == 0
        assert addr.bit(31) == 1

    def test_bit_out_of_range(self):
        addr = IpAddress.parse("10.0.0.1")
        with pytest.raises(ValueError):
            addr.bit(32)
        with pytest.raises(ValueError):
            addr.bit(-1)

    def test_ordering(self):
        a = IpAddress.parse("10.0.0.1")
        b = IpAddress.parse("10.0.0.2")
        assert a < b

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_v4_bits_reconstruct_value(self, value):
        addr = IpAddress.v4(value)
        reconstructed = 0
        for i in range(32):
            reconstructed = (reconstructed << 1) | addr.bit(i)
        assert reconstructed == value


class TestPrefix:
    def test_parse_and_contains(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains(IpAddress.parse("192.0.2.255"))
        assert not prefix.contains(IpAddress.parse("192.0.3.0"))
        assert not prefix.contains(IpAddress.parse("2001:db8::1"))

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(IpAddress.parse("192.0.2.1"), 24)

    def test_of_masks_host_bits(self):
        prefix = Prefix.of(IpAddress.parse("192.0.2.77"), 24)
        assert str(prefix) == "192.0.2.0/24"

    def test_zero_length_contains_everything_in_family(self):
        prefix = Prefix.of(IpAddress.parse("0.0.0.0"), 0)
        assert prefix.contains(IpAddress.parse("255.255.255.255"))
        assert not prefix.contains(IpAddress.parse("::1"))

    def test_covers(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_nth(self):
        prefix = Prefix.parse("192.0.2.0/30")
        assert str(prefix.nth(0)) == "192.0.2.0"
        assert str(prefix.nth(3)) == "192.0.2.3"
        with pytest.raises(ValueError):
            prefix.nth(4)

    def test_subnet(self):
        prefix = Prefix.parse("10.0.0.0/8")
        sub = prefix.subnet(16, 5)
        assert str(sub) == "10.5.0.0/16"
        with pytest.raises(ValueError):
            prefix.subnet(4, 0)
        with pytest.raises(ValueError):
            prefix.subnet(16, 256)

    def test_num_addresses(self):
        assert Prefix.parse("192.0.2.0/24").num_addresses == 256
        assert Prefix.parse("2001:db8::/64").num_addresses == 2**64

    def test_v6(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.contains(IpAddress.parse("2001:db8:ffff::1"))
        assert not prefix.contains(IpAddress.parse("2001:db9::1"))

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32))
    def test_of_always_contains_source(self, value, length):
        addr = IpAddress.v4(value)
        prefix = Prefix.of(addr, length)
        assert prefix.contains(addr)


class TestAddressPool:
    def test_sequential_allocation(self):
        pool = AddressPool(Prefix.parse("192.0.2.0/29"))
        first = pool.allocate()
        second = pool.allocate()
        assert str(first) == "192.0.2.1"  # network address skipped
        assert str(second) == "192.0.2.2"

    def test_exhaustion(self):
        pool = AddressPool(Prefix.parse("192.0.2.0/30"))
        pool.allocate_block(3)
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_no_skip(self):
        pool = AddressPool(Prefix.parse("192.0.2.0/30"), skip_network_address=False)
        assert str(pool.allocate()) == "192.0.2.0"

    def test_remaining(self):
        pool = AddressPool(Prefix.parse("192.0.2.0/29"))
        assert pool.remaining == 7
        pool.allocate()
        assert pool.remaining == 6

    def test_negative_block(self):
        pool = AddressPool(Prefix.parse("192.0.2.0/29"))
        with pytest.raises(ValueError):
            pool.allocate_block(-1)

    def test_unique_addresses(self):
        pool = AddressPool(Prefix.parse("2001:db8::/120"))
        block = pool.allocate_block(200)
        assert len(set(block)) == 200
