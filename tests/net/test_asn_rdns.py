"""Tests for the AS registry and reverse DNS."""

import pytest

from repro.net.addr import IpAddress
from repro.net.asn import AsCategory, AsRegistry
from repro.net.psl import default_psl
from repro.net.rdns import ReverseDns


class TestAsRegistry:
    def test_register_and_lookup(self):
        registry = AsRegistry()
        info = registry.register(
            13335, "CLOUDFLARENET", org_id="cloudflare", org_name="Cloudflare, Inc.",
            category=AsCategory.HOSTING_CLOUD,
        )
        assert registry.lookup(13335) is info
        assert registry.organization_of(13335).name == "Cloudflare, Inc."
        assert 13335 in registry
        assert registry.lookup(99999) is None

    def test_multiple_ases_per_org(self):
        """Amazon-style: one org, several ASes (paper section 5.1)."""
        registry = AsRegistry()
        registry.register(16509, "AMAZON-02", org_id="amazon", org_name="Amazon.com, Inc.")
        registry.register(14618, "AMAZON-AES", org_id="amazon")
        ases = registry.ases_of_org("amazon")
        assert {a.asn for a in ases} == {16509, 14618}
        assert registry.organization_of(16509) == registry.organization_of(14618)

    def test_duplicate_asn_rejected(self):
        registry = AsRegistry()
        registry.register(1, "A", org_id="a")
        with pytest.raises(ValueError):
            registry.register(1, "B", org_id="b")

    def test_conflicting_org_name_rejected(self):
        registry = AsRegistry()
        registry.register_org("x", "X Corp")
        with pytest.raises(ValueError):
            registry.register_org("x", "Y Corp")

    def test_invalid_asn(self):
        registry = AsRegistry()
        with pytest.raises(ValueError):
            registry.register(0, "BAD", org_id="bad")

    def test_all_sorted(self):
        registry = AsRegistry()
        registry.register(30, "C", org_id="c")
        registry.register(10, "A", org_id="a")
        registry.register(20, "B", org_id="b")
        assert [a.asn for a in registry.all_ases()] == [10, 20, 30]
        assert len(registry) == 3


class TestReverseDns:
    def test_register_lookup(self):
        rdns = ReverseDns()
        addr = IpAddress.parse("198.51.100.7")
        rdns.register(addr, "Server-7.CDN.Example.NET.")
        assert rdns.lookup(addr) == "server-7.cdn.example.net"
        assert addr in rdns
        assert len(rdns) == 1

    def test_missing(self):
        rdns = ReverseDns()
        assert rdns.lookup(IpAddress.parse("10.0.0.1")) is None

    def test_etld1_lookup(self):
        rdns = ReverseDns()
        addr = IpAddress.parse("198.51.100.7")
        rdns.register(addr, "edge-7.lax.cdn.example.net")
        assert rdns.lookup_etld1(addr, default_psl()) == "example.net"

    def test_etld1_missing_is_none(self):
        rdns = ReverseDns()
        assert rdns.lookup_etld1(IpAddress.parse("10.0.0.1"), default_psl()) is None

    def test_cloud_canonical_name_pitfall(self):
        """Cloud-hosted tenant reverse-maps to the cloud's domain, not the
        tenant's (the limitation the paper hits in section 3.4)."""
        rdns = ReverseDns()
        addr = IpAddress.parse("198.51.100.99")
        rdns.register(addr, "ec2-198-51-100-99.compute.cloudhost.com")
        assert rdns.lookup_etld1(addr, default_psl()) == "cloudhost.com"
