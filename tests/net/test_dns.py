"""Tests for DNS zones and the CNAME-chasing resolver."""

import pytest

from repro.net.addr import IpAddress
from repro.net.dns import (
    DnsError,
    DnsRecordType,
    DnsStatus,
    Resolver,
    ZoneDatabase,
    normalize_name,
)

V4 = IpAddress.parse("192.0.2.1")
V6 = IpAddress.parse("2001:db8::1")


def make_resolver() -> Resolver:
    db = ZoneDatabase()
    zone = db.create_zone("example.com")
    zone.add("example.com", DnsRecordType.A, V4)
    zone.add("example.com", DnsRecordType.AAAA, V6)
    zone.add("v4only.example.com", DnsRecordType.A, V4)
    zone.add("www.example.com", DnsRecordType.CNAME, "cdn.provider.net")
    provider = db.create_zone("provider.net")
    provider.add("cdn.provider.net", DnsRecordType.A, IpAddress.parse("198.51.100.7"))
    provider.add("cdn.provider.net", DnsRecordType.AAAA, IpAddress.parse("2001:db8:1::7"))
    return Resolver(database=db)


class TestNormalizeName:
    def test_lowercase_and_trailing_dot(self):
        assert normalize_name("WWW.Example.COM.") == "www.example.com"

    def test_empty_rejected(self):
        with pytest.raises(DnsError):
            normalize_name("")
        with pytest.raises(DnsError):
            normalize_name("...")

    def test_empty_label_rejected(self):
        with pytest.raises(DnsError):
            normalize_name("a..b")

    def test_long_label_rejected(self):
        with pytest.raises(DnsError):
            normalize_name("x" * 64 + ".com")


class TestZone:
    def test_record_type_value_validation(self):
        db = ZoneDatabase()
        zone = db.create_zone("example.com")
        with pytest.raises(DnsError):
            zone.add("example.com", DnsRecordType.A, V6)  # wrong family
        with pytest.raises(DnsError):
            zone.add("example.com", DnsRecordType.AAAA, V4)
        with pytest.raises(DnsError):
            zone.add("example.com", DnsRecordType.CNAME, V4)  # address in CNAME

    def test_out_of_zone_rejected(self):
        db = ZoneDatabase()
        zone = db.create_zone("example.com")
        with pytest.raises(DnsError):
            zone.add("other.org", DnsRecordType.A, V4)

    def test_cname_exclusivity(self):
        db = ZoneDatabase()
        zone = db.create_zone("example.com")
        zone.add("a.example.com", DnsRecordType.A, V4)
        with pytest.raises(DnsError):
            zone.add("a.example.com", DnsRecordType.CNAME, "b.example.com")
        zone.add("c.example.com", DnsRecordType.CNAME, "b.example.com")
        with pytest.raises(DnsError):
            zone.add("c.example.com", DnsRecordType.A, V4)

    def test_duplicate_zone_rejected(self):
        db = ZoneDatabase()
        db.create_zone("example.com")
        with pytest.raises(DnsError):
            db.create_zone("EXAMPLE.com")

    def test_get_or_create(self):
        db = ZoneDatabase()
        zone1 = db.get_or_create_zone("example.com")
        zone2 = db.get_or_create_zone("example.com")
        assert zone1 is zone2
        assert len(db) == 1

    def test_zone_for_longest_suffix(self):
        db = ZoneDatabase()
        db.create_zone("com")
        sub = db.create_zone("example.com")
        assert db.zone_for("www.example.com") is sub
        assert db.zone_for("other.com").origin == "com"
        assert db.zone_for("nothing.org") is None


class TestResolver:
    def test_simple_a_and_aaaa(self):
        resolver = make_resolver()
        a, aaaa = resolver.resolve_addresses("example.com")
        assert a.status is DnsStatus.NOERROR
        assert a.addresses == (V4,)
        assert aaaa.addresses == (V6,)

    def test_nodata_vs_nxdomain(self):
        resolver = make_resolver()
        aaaa = resolver.resolve("v4only.example.com", DnsRecordType.AAAA)
        assert aaaa.status is DnsStatus.NOERROR
        assert aaaa.is_nodata
        missing = resolver.resolve("missing.example.com", DnsRecordType.A)
        assert missing.status is DnsStatus.NXDOMAIN

    def test_unknown_zone_is_nxdomain(self):
        resolver = make_resolver()
        response = resolver.resolve("www.unknown-tld.zz", DnsRecordType.A)
        assert response.status is DnsStatus.NXDOMAIN

    def test_cname_chain(self):
        resolver = make_resolver()
        response = resolver.resolve("www.example.com", DnsRecordType.A)
        assert response.status is DnsStatus.NOERROR
        assert response.chain == ("www.example.com", "cdn.provider.net")
        assert response.canonical_name == "cdn.provider.net"
        assert str(response.addresses[0]) == "198.51.100.7"

    def test_cname_loop_detected(self):
        db = ZoneDatabase()
        zone = db.create_zone("loop.com")
        zone.add("a.loop.com", DnsRecordType.CNAME, "b.loop.com")
        zone.add("b.loop.com", DnsRecordType.CNAME, "a.loop.com")
        resolver = Resolver(database=db)
        response = resolver.resolve("a.loop.com", DnsRecordType.A)
        assert response.status is DnsStatus.SERVFAIL

    def test_chain_too_long(self):
        db = ZoneDatabase()
        zone = db.create_zone("deep.com")
        for i in range(12):
            zone.add(f"h{i}.deep.com", DnsRecordType.CNAME, f"h{i + 1}.deep.com")
        zone.add("h12.deep.com", DnsRecordType.A, V4)
        resolver = Resolver(database=db)
        response = resolver.resolve("h0.deep.com", DnsRecordType.A)
        assert response.status is DnsStatus.CHAIN_TOO_LONG

    def test_dangling_cname_is_nxdomain(self):
        db = ZoneDatabase()
        zone = db.create_zone("dangle.com")
        zone.add("www.dangle.com", DnsRecordType.CNAME, "gone.nowhere-zone.net")
        resolver = Resolver(database=db)
        response = resolver.resolve("www.dangle.com", DnsRecordType.A)
        assert response.status is DnsStatus.NXDOMAIN
        assert response.chain[-1] == "gone.nowhere-zone.net"

    def test_failure_injection(self):
        resolver = make_resolver()
        resolver.inject_failure("example.com", DnsStatus.SERVFAIL)
        response = resolver.resolve("example.com", DnsRecordType.A)
        assert response.status is DnsStatus.SERVFAIL
        resolver.clear_failure("example.com")
        assert resolver.resolve("example.com", DnsRecordType.A).status is DnsStatus.NOERROR

    def test_failure_injection_mid_chain(self):
        resolver = make_resolver()
        resolver.inject_failure("cdn.provider.net", DnsStatus.TIMEOUT)
        response = resolver.resolve("www.example.com", DnsRecordType.A)
        assert response.status is DnsStatus.TIMEOUT
        assert len(response.chain) == 2

    def test_cannot_inject_noerror(self):
        resolver = make_resolver()
        with pytest.raises(ValueError):
            resolver.inject_failure("example.com", DnsStatus.NOERROR)

    def test_query_counter(self):
        resolver = make_resolver()
        before = resolver.queries_issued
        resolver.resolve("www.example.com", DnsRecordType.A)
        assert resolver.queries_issued == before + 2  # name + CNAME target
