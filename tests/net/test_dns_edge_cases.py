"""Additional DNS edge cases: record removal, re-pointing, failure modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import IpAddress
from repro.net.dns import (
    DnsError,
    DnsRecordType,
    DnsStatus,
    Resolver,
    ZoneDatabase,
    normalize_name,
)

V4A = IpAddress.parse("192.0.2.1")
V4B = IpAddress.parse("192.0.2.2")
V6A = IpAddress.parse("2001:db8::1")

_LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))


class TestRemove:
    def test_remove_and_repoint(self):
        """The ecosystem's TLS-failure flow: move a host to new addresses."""
        db = ZoneDatabase()
        zone = db.create_zone("move.com")
        zone.add("www.move.com", DnsRecordType.A, V4A)
        resolver = Resolver(database=db)
        assert resolver.resolve("www.move.com", DnsRecordType.A).addresses == (V4A,)
        assert zone.remove("www.move.com", DnsRecordType.A) == 1
        zone.add("www.move.com", DnsRecordType.A, V4B)
        assert resolver.resolve("www.move.com", DnsRecordType.A).addresses == (V4B,)

    def test_remove_missing_returns_zero(self):
        db = ZoneDatabase()
        zone = db.create_zone("x.com")
        assert zone.remove("www.x.com", DnsRecordType.A) == 0

    def test_remove_all_records_makes_name_nxdomain(self):
        db = ZoneDatabase()
        zone = db.create_zone("gone.com")
        zone.add("www.gone.com", DnsRecordType.A, V4A)
        zone.remove("www.gone.com", DnsRecordType.A)
        resolver = Resolver(database=db)
        response = resolver.resolve("www.gone.com", DnsRecordType.A)
        assert response.status is DnsStatus.NXDOMAIN

    def test_remove_one_type_keeps_other(self):
        db = ZoneDatabase()
        zone = db.create_zone("dual.com")
        zone.add("www.dual.com", DnsRecordType.A, V4A)
        zone.add("www.dual.com", DnsRecordType.AAAA, V6A)
        zone.remove("www.dual.com", DnsRecordType.AAAA)
        resolver = Resolver(database=db)
        a = resolver.resolve("www.dual.com", DnsRecordType.A)
        aaaa = resolver.resolve("www.dual.com", DnsRecordType.AAAA)
        assert a.addresses == (V4A,)
        assert aaaa.status is DnsStatus.NOERROR and aaaa.is_nodata

    def test_remove_allows_cname_afterwards(self):
        db = ZoneDatabase()
        zone = db.create_zone("swap.com")
        zone.add("www.swap.com", DnsRecordType.A, V4A)
        with pytest.raises(DnsError):
            zone.add("www.swap.com", DnsRecordType.CNAME, "cdn.swap.com")
        zone.remove("www.swap.com", DnsRecordType.A)
        zone.add("www.swap.com", DnsRecordType.CNAME, "cdn.swap.com")


class TestMultipleRecords:
    def test_round_robin_a_records(self):
        db = ZoneDatabase()
        zone = db.create_zone("multi.com")
        zone.add("www.multi.com", DnsRecordType.A, V4A)
        zone.add("www.multi.com", DnsRecordType.A, V4B)
        resolver = Resolver(database=db)
        response = resolver.resolve("www.multi.com", DnsRecordType.A)
        assert set(response.addresses) == {V4A, V4B}

    def test_txt_records(self):
        db = ZoneDatabase()
        zone = db.create_zone("meta.com")
        zone.add("meta.com", DnsRecordType.TXT, "v=spf1.-all")
        resolver = Resolver(database=db)
        response = resolver.resolve("meta.com", DnsRecordType.TXT)
        assert response.status is DnsStatus.NOERROR
        assert len(response.answers) == 1


class TestNormalizeNameProperty:
    @given(st.lists(_LABEL, min_size=1, max_size=5))
    def test_idempotent(self, labels):
        name = ".".join(labels)
        once = normalize_name(name)
        assert normalize_name(once) == once

    @given(st.lists(_LABEL, min_size=1, max_size=5))
    def test_case_insensitive(self, labels):
        name = ".".join(labels)
        assert normalize_name(name.upper()) == normalize_name(name)
