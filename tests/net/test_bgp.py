"""Tests for the routing table, including LPM-vs-brute-force property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IpAddress, Prefix
from repro.net.bgp import Announcement, RoutingTable


class TestAnnouncement:
    def test_invalid_origin(self):
        with pytest.raises(ValueError):
            Announcement(Prefix.parse("10.0.0.0/8"), 0)


class TestRoutingTable:
    def test_exact_match(self):
        table = RoutingTable()
        table.announce(Prefix.parse("192.0.2.0/24"), 64500)
        assert table.origin_of(IpAddress.parse("192.0.2.9")) == 64500

    def test_no_match(self):
        table = RoutingTable()
        table.announce(Prefix.parse("192.0.2.0/24"), 64500)
        assert table.origin_of(IpAddress.parse("198.51.100.1")) is None

    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("10.1.0.0/16"), 200)
        table.announce(Prefix.parse("10.1.2.0/24"), 300)
        assert table.origin_of(IpAddress.parse("10.1.2.3")) == 300
        assert table.origin_of(IpAddress.parse("10.1.9.9")) == 200
        assert table.origin_of(IpAddress.parse("10.9.9.9")) == 100

    def test_default_route(self):
        table = RoutingTable()
        table.announce(Prefix.parse("0.0.0.0/0"), 1)
        table.announce(Prefix.parse("10.0.0.0/8"), 2)
        assert table.origin_of(IpAddress.parse("8.8.8.8")) == 1
        assert table.origin_of(IpAddress.parse("10.0.0.1")) == 2

    def test_families_independent(self):
        table = RoutingTable()
        table.announce(Prefix.parse("0.0.0.0/0"), 4)
        table.announce(Prefix.parse("::/0"), 6)
        assert table.origin_of(IpAddress.parse("1.2.3.4")) == 4
        assert table.origin_of(IpAddress.parse("2001:db8::1")) == 6

    def test_v6_lpm(self):
        table = RoutingTable()
        table.announce(Prefix.parse("2001:db8::/32"), 10)
        table.announce(Prefix.parse("2001:db8:1::/48"), 20)
        assert table.origin_of(IpAddress.parse("2001:db8:1::5")) == 20
        assert table.origin_of(IpAddress.parse("2001:db8:2::5")) == 10

    def test_reannounce_replaces(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("10.0.0.0/8"), 999)
        assert table.origin_of(IpAddress.parse("10.0.0.1")) == 999
        assert len(table) == 1

    def test_withdraw(self):
        table = RoutingTable()
        prefix = Prefix.parse("10.0.0.0/8")
        table.announce(prefix, 100)
        assert table.withdraw(prefix)
        assert table.origin_of(IpAddress.parse("10.0.0.1")) is None
        assert not table.withdraw(prefix)
        assert len(table) == 0

    def test_withdraw_specific_falls_back_to_covering(self):
        table = RoutingTable()
        table.announce(Prefix.parse("10.0.0.0/8"), 100)
        table.announce(Prefix.parse("10.1.0.0/16"), 200)
        table.withdraw(Prefix.parse("10.1.0.0/16"))
        assert table.origin_of(IpAddress.parse("10.1.0.1")) == 100

    def test_announcements_sorted(self):
        table = RoutingTable()
        table.announce(Prefix.parse("172.16.0.0/12"), 3)
        table.announce(Prefix.parse("10.0.0.0/8"), 1)
        table.announce(Prefix.parse("2001:db8::/32"), 9)
        announcements = table.announcements()
        assert [a.origin_asn for a in announcements] == [1, 3, 9]

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=1, max_value=65000),
            ),
            min_size=1,
            max_size=40,
        ),
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=20),
    )
    def test_lpm_matches_brute_force(self, raw_prefixes, queries):
        """The trie must agree with an O(n) scan for every query."""
        table = RoutingTable()
        installed: dict[tuple[int, int], int] = {}
        for value, length, asn in raw_prefixes:
            prefix = Prefix.of(IpAddress.v4(value), length)
            table.announce(prefix, asn)
            installed[(prefix.address.value, prefix.length)] = asn

        for query_value in queries:
            address = IpAddress.v4(query_value)
            best_len, best_asn = -1, None
            for (pvalue, plen), asn in installed.items():
                prefix = Prefix(IpAddress.v4(pvalue), plen)
                if prefix.contains(address) and plen > best_len:
                    best_len, best_asn = plen, asn
            assert table.origin_of(address) == best_asn
