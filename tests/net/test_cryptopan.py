"""Tests for CryptoPAN prefix-preserving anonymization.

The central property (from Xu et al.): two addresses sharing exactly a
k-bit prefix must anonymize to addresses sharing exactly a k-bit prefix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import Family, IpAddress
from repro.net.cryptopan import CryptoPan

KEY = b"0123456789abcdef0123456789abcdef"


def shared_prefix_len(a: IpAddress, b: IpAddress) -> int:
    assert a.family is b.family
    for i in range(a.family.bits):
        if a.bit(i) != b.bit(i):
            return i
    return a.family.bits


class TestConstruction:
    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            CryptoPan(b"short")

    def test_deterministic(self):
        pan1 = CryptoPan(KEY)
        pan2 = CryptoPan(KEY)
        addr = IpAddress.parse("203.0.113.9")
        assert pan1.anonymize(addr) == pan2.anonymize(addr)

    def test_key_sensitivity(self):
        addr = IpAddress.parse("203.0.113.9")
        a = CryptoPan(KEY).anonymize(addr)
        b = CryptoPan(b"another-key-entirely-0123456789").anonymize(addr)
        assert a != b

    def test_family_preserved(self):
        pan = CryptoPan(KEY)
        v4 = pan.anonymize(IpAddress.parse("10.0.0.1"))
        v6 = pan.anonymize(IpAddress.parse("2001:db8::1"))
        assert v4.family is Family.V4
        assert v6.family is Family.V6


class TestPrefixPreservation:
    @settings(max_examples=100)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_v4_shared_prefix_exactly_preserved(self, va, vb):
        pan = CryptoPan(KEY)
        a, b = IpAddress.v4(va), IpAddress.v4(vb)
        k = shared_prefix_len(a, b)
        ka = shared_prefix_len(pan.anonymize(a), pan.anonymize(b))
        assert ka == k

    @settings(max_examples=30)
    @given(
        st.integers(min_value=0, max_value=2**128 - 1),
        st.integers(min_value=0, max_value=2**128 - 1),
    )
    def test_v6_shared_prefix_exactly_preserved(self, va, vb):
        pan = CryptoPan(KEY)
        a, b = IpAddress.v6(va), IpAddress.v6(vb)
        k = shared_prefix_len(a, b)
        ka = shared_prefix_len(pan.anonymize(a), pan.anonymize(b))
        assert ka == k

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_injective_on_samples(self, value):
        """Anonymization is a bijection; same output implies same input."""
        pan = CryptoPan(KEY)
        other = value ^ 1  # differs in last bit
        a = pan.anonymize(IpAddress.v4(value))
        b = pan.anonymize(IpAddress.v4(other))
        assert a != b


class TestPartialScramble:
    def test_protect_bits_pass_through(self):
        pan = CryptoPan(KEY)
        addr = IpAddress.parse("198.51.100.77")
        result = pan.anonymize(addr, protect_bits=24)
        for i in range(24):
            assert result.bit(i) == addr.bit(i)

    def test_protect_all_is_identity(self):
        pan = CryptoPan(KEY)
        addr = IpAddress.parse("198.51.100.77")
        assert pan.anonymize(addr, protect_bits=32) == addr

    def test_protect_bits_out_of_range(self):
        pan = CryptoPan(KEY)
        with pytest.raises(ValueError):
            pan.anonymize(IpAddress.parse("10.0.0.1"), protect_bits=33)

    def test_client_policy_v4_keeps_slash24(self):
        pan = CryptoPan(KEY)
        a = pan.anonymize_client(IpAddress.parse("203.0.113.10"))
        b = pan.anonymize_client(IpAddress.parse("203.0.113.20"))
        assert str(a).rsplit(".", 1)[0] == "203.0.113"
        assert str(b).rsplit(".", 1)[0] == "203.0.113"

    def test_client_policy_v6_keeps_slash64(self):
        pan = CryptoPan(KEY)
        addr = IpAddress.parse("2001:db8:aaaa:bbbb:1:2:3:4")
        result = pan.anonymize_client(addr)
        for i in range(64):
            assert result.bit(i) == addr.bit(i)
        # Interface identifier should (with overwhelming probability) change.
        assert result != addr

    def test_partial_scramble_still_prefix_preserving_below_boundary(self):
        """Two addresses sharing 28 bits keep exactly 28 shared bits even
        when the top 24 are protected."""
        pan = CryptoPan(KEY)
        a = IpAddress.parse("203.0.113.16")  # ...0001_0000
        b = IpAddress.parse("203.0.113.31")  # ...0001_1111
        k = shared_prefix_len(a, b)
        ka = shared_prefix_len(
            pan.anonymize(a, protect_bits=24), pan.anonymize(b, protect_bits=24)
        )
        assert ka == k == 28

    def test_cache_reports(self):
        pan = CryptoPan(KEY)
        pan.anonymize(IpAddress.parse("10.0.0.1"))
        pan.anonymize(IpAddress.parse("10.0.0.1"))
        assert "hits=1" in pan.cache_info()
