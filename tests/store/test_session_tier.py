"""The store as the session's disk tier: warm starts, fidelity, fallback.

The acceptance contract of the warehouse: a cold process pointed at a
populated store renders every artifact **JSON-equal** to the in-process
build, with zero layer rebuilds (``BUILD_COUNTS`` unchanged, hits in
``STORE_COUNTS``), and a damaged entry degrades to a rebuild instead of
an error.
"""

import json
import warnings

import pytest

from repro.api import BUILD_COUNTS, STORE_COUNTS, Study, StudyConfig, clear_caches
from repro.api.session import _ALL_CACHES
from repro.store import set_store, snapshot_study, warm_start
from repro.store.serialize import PAYLOAD_FILE

#: One artifact per layer (deps via ``fig7``, whatif via a one-scenario
#: grid) -- small enough to build in seconds, wide enough to cover the
#: whole session surface.
ARTIFACTS = ("table1", "fig5", "table2", "fig7", "obs_availability", "contrast")

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)
WHATIF_CONFIG = CONFIG.replace(whatif_scenarios=("nat64:DE",))


@pytest.fixture()
def store(tmp_path):
    """An active store rooted in tmp_path; always deactivated after."""
    store = set_store(tmp_path / "warehouse")
    clear_caches()
    try:
        yield store
    finally:
        set_store(None)
        clear_caches()


def render_all(config: StudyConfig) -> dict[str, dict]:
    study = Study(config)
    docs = {name: json.loads(study.artifact(name).to_json()) for name in ARTIFACTS}
    docs["whatif"] = json.loads(Study(WHATIF_CONFIG).artifact("whatif").to_json())
    return docs


class TestWarmStartFidelity:
    def test_disk_warm_start_is_json_identical_and_rebuild_free(self, store):
        cold = render_all(CONFIG)
        assert STORE_COUNTS["write:traffic"] >= 1  # write-behind happened

        clear_caches()
        for cache in _ALL_CACHES.values():
            assert not cache  # genuinely cold in memory
        before = BUILD_COUNTS.copy()
        warm = render_all(CONFIG)

        assert warm == cold  # bit-identical wire format
        assert BUILD_COUNTS == before  # zero rebuilds: disk served everything
        for layer in ("traffic", "census", "cloud", "observatory", "whatif"):
            assert STORE_COUNTS[f"hit:{layer}"] >= 1

    def test_warm_start_primes_caches_in_bulk(self, store):
        study = Study(CONFIG)
        snapshot_study(store, study)
        clear_caches()
        primed = warm_start(store, CONFIG)
        assert set(primed) == {
            "traffic", "census", "cloud", "dependencies", "observatory",
            "sentinel",
        }
        before = BUILD_COUNTS.copy()
        fresh = Study(CONFIG)
        fresh.traffic, fresh.census, fresh.cloud, fresh.observatory
        assert BUILD_COUNTS == before

    def test_unknown_layer_rejected(self, store):
        with pytest.raises(ValueError, match="unknown layer"):
            snapshot_study(store, Study(CONFIG), ("warp",))
        with pytest.raises(ValueError, match="unknown layer"):
            warm_start(store, CONFIG, ("warp",))


class TestDegradation:
    def test_corrupt_entry_falls_back_to_rebuild_with_warning(self, store):
        study = Study(CONFIG)
        study.traffic  # build + write behind
        # Corrupt the traffic payload on disk.
        [entry] = [e for e in store.entries() if e.name == "traffic"]
        path = store.objects_dir / entry.digest / PAYLOAD_FILE
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF
        path.write_bytes(bytes(blob))

        clear_caches()
        before = BUILD_COUNTS.copy()
        with pytest.warns(RuntimeWarning, match="could not load the traffic"):
            rebuilt = Study(CONFIG).traffic
        assert rebuilt.num_days == CONFIG.days
        assert BUILD_COUNTS["traffic"] == before["traffic"] + 1
        assert STORE_COUNTS["error:traffic"] >= 1

    def test_injected_corruption_rebuilds_and_repairs_bit_identically(self, store):
        """Satellite contract: corrupt read -> warn + rebuild + repair.

        The ``corrupt-blob`` fault mutates the *read*, never the disk;
        the session must warn, rebuild the layer, and write the repaired
        entry back -- after which the payload bytes are identical to the
        pristine ones and a faultless reload is a clean store hit.
        """
        from repro.resilience import FaultPlan, FaultSpec, inject_faults

        Study(CONFIG).traffic  # build + write-behind the pristine entry
        [entry] = [e for e in store.entries() if e.name == "traffic"]
        payload_path = store.objects_dir / entry.digest / PAYLOAD_FILE
        pristine = payload_path.read_bytes()

        clear_caches()
        before = BUILD_COUNTS.copy()
        writes = STORE_COUNTS["write:traffic"]
        # count == horizon: the very first blob read comes back corrupted.
        plan = FaultPlan([FaultSpec("corrupt-blob", count=1, horizon=1)], seed=7)
        with inject_faults(plan):
            with pytest.warns(RuntimeWarning, match="could not load the traffic"):
                rebuilt = Study(CONFIG).traffic
        assert rebuilt.num_days == CONFIG.days
        assert BUILD_COUNTS["traffic"] == before["traffic"] + 1
        assert STORE_COUNTS["error:traffic"] >= 1
        assert STORE_COUNTS["write:traffic"] == writes + 1  # the repair write

        # Round trip of the repaired entry: bit-identical bytes on disk,
        # and a faultless cold load serves it with zero rebuilds.
        assert payload_path.read_bytes() == pristine
        clear_caches()
        before = BUILD_COUNTS.copy()
        Study(CONFIG).traffic
        assert BUILD_COUNTS == before
        assert store.verify() == []

    def test_transient_read_fault_is_retried_and_recovered(self, store):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults
        from repro.resilience.retry import RETRY_COUNTS, reset_retry_counts

        Study(CONFIG).traffic
        clear_caches()
        reset_retry_counts()
        before = BUILD_COUNTS.copy()
        # Exactly the first read op fails; the retry's second attempt
        # reads clean, so the disk tier still serves -- no rebuild.
        plan = FaultPlan([FaultSpec("store-read", count=1, horizon=1)], seed=7)
        with inject_faults(plan):
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # any warning would fail
                Study(CONFIG).traffic
        assert BUILD_COUNTS == before
        assert STORE_COUNTS["retry:traffic"] >= 1
        assert RETRY_COUNTS["recovered:store:traffic"] == 1
        reset_retry_counts()

    def test_exhausted_read_retries_degrade_to_rebuild(self, store):
        from repro.resilience import FaultPlan, FaultSpec, inject_faults
        from repro.resilience.retry import RETRY_COUNTS, reset_retry_counts

        Study(CONFIG).traffic
        clear_caches()
        reset_retry_counts()
        before = BUILD_COUNTS.copy()
        # Every read op fails: the store policy gives up, the session
        # falls back to a rebuild instead of erroring out.
        plan = FaultPlan([FaultSpec("store-read", count=8, horizon=8)], seed=7)
        with inject_faults(plan):
            with pytest.warns(RuntimeWarning, match="could not load the traffic"):
                Study(CONFIG).traffic
        assert BUILD_COUNTS["traffic"] == before["traffic"] + 1
        assert STORE_COUNTS["error:traffic"] >= 1
        assert RETRY_COUNTS["gaveup:store:traffic"] >= 1
        reset_retry_counts()

    def test_no_store_means_no_store_traffic(self, tmp_path):
        set_store(None)
        clear_caches()
        before = STORE_COUNTS.copy()
        Study(CONFIG).census
        assert STORE_COUNTS == before


class TestEnvResolution:
    def test_repro_store_env_var_activates_a_store(self, tmp_path, monkeypatch):
        from repro.store import active_store, reset_store

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        reset_store()
        try:
            store = active_store()
            assert store is not None
            assert store.root == tmp_path / "env-store"
        finally:
            monkeypatch.delenv("REPRO_STORE")
            reset_store()

    def test_no_env_no_store(self, monkeypatch):
        from repro.store import active_store, reset_store

        monkeypatch.delenv("REPRO_STORE", raising=False)
        reset_store()
        try:
            assert active_store() is None
        finally:
            reset_store()
