"""The store as the session's disk tier: warm starts, fidelity, fallback.

The acceptance contract of the warehouse: a cold process pointed at a
populated store renders every artifact **JSON-equal** to the in-process
build, with zero layer rebuilds (``BUILD_COUNTS`` unchanged, hits in
``STORE_COUNTS``), and a damaged entry degrades to a rebuild instead of
an error.
"""

import json

import pytest

from repro.api import BUILD_COUNTS, STORE_COUNTS, Study, StudyConfig, clear_caches
from repro.api.session import _ALL_CACHES
from repro.store import set_store, snapshot_study, warm_start
from repro.store.serialize import PAYLOAD_FILE

#: One artifact per layer (deps via ``fig7``, whatif via a one-scenario
#: grid) -- small enough to build in seconds, wide enough to cover the
#: whole session surface.
ARTIFACTS = ("table1", "fig5", "table2", "fig7", "obs_availability", "contrast")

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)
WHATIF_CONFIG = CONFIG.replace(whatif_scenarios=("nat64:DE",))


@pytest.fixture()
def store(tmp_path):
    """An active store rooted in tmp_path; always deactivated after."""
    store = set_store(tmp_path / "warehouse")
    clear_caches()
    try:
        yield store
    finally:
        set_store(None)
        clear_caches()


def render_all(config: StudyConfig) -> dict[str, dict]:
    study = Study(config)
    docs = {name: json.loads(study.artifact(name).to_json()) for name in ARTIFACTS}
    docs["whatif"] = json.loads(Study(WHATIF_CONFIG).artifact("whatif").to_json())
    return docs


class TestWarmStartFidelity:
    def test_disk_warm_start_is_json_identical_and_rebuild_free(self, store):
        cold = render_all(CONFIG)
        assert STORE_COUNTS["write:traffic"] >= 1  # write-behind happened

        clear_caches()
        for cache in _ALL_CACHES.values():
            assert not cache  # genuinely cold in memory
        before = BUILD_COUNTS.copy()
        warm = render_all(CONFIG)

        assert warm == cold  # bit-identical wire format
        assert BUILD_COUNTS == before  # zero rebuilds: disk served everything
        for layer in ("traffic", "census", "cloud", "observatory", "whatif"):
            assert STORE_COUNTS[f"hit:{layer}"] >= 1

    def test_warm_start_primes_caches_in_bulk(self, store):
        study = Study(CONFIG)
        snapshot_study(store, study)
        clear_caches()
        primed = warm_start(store, CONFIG)
        assert set(primed) == {
            "traffic", "census", "cloud", "dependencies", "observatory",
        }
        before = BUILD_COUNTS.copy()
        fresh = Study(CONFIG)
        fresh.traffic, fresh.census, fresh.cloud, fresh.observatory
        assert BUILD_COUNTS == before

    def test_unknown_layer_rejected(self, store):
        with pytest.raises(ValueError, match="unknown layer"):
            snapshot_study(store, Study(CONFIG), ("warp",))
        with pytest.raises(ValueError, match="unknown layer"):
            warm_start(store, CONFIG, ("warp",))


class TestDegradation:
    def test_corrupt_entry_falls_back_to_rebuild_with_warning(self, store):
        study = Study(CONFIG)
        study.traffic  # build + write behind
        # Corrupt the traffic payload on disk.
        [entry] = [e for e in store.entries() if e.name == "traffic"]
        path = store.objects_dir / entry.digest / PAYLOAD_FILE
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF
        path.write_bytes(bytes(blob))

        clear_caches()
        before = BUILD_COUNTS.copy()
        with pytest.warns(RuntimeWarning, match="could not load the traffic"):
            rebuilt = Study(CONFIG).traffic
        assert rebuilt.num_days == CONFIG.days
        assert BUILD_COUNTS["traffic"] == before["traffic"] + 1
        assert STORE_COUNTS["error:traffic"] >= 1

    def test_no_store_means_no_store_traffic(self, tmp_path):
        set_store(None)
        clear_caches()
        before = STORE_COUNTS.copy()
        Study(CONFIG).census
        assert STORE_COUNTS == before


class TestEnvResolution:
    def test_repro_store_env_var_activates_a_store(self, tmp_path, monkeypatch):
        from repro.store import active_store, reset_store

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        reset_store()
        try:
            store = active_store()
            assert store is not None
            assert store.root == tmp_path / "env-store"
        finally:
            monkeypatch.delenv("REPRO_STORE")
            reset_store()

    def test_no_env_no_store(self, monkeypatch):
        from repro.store import active_store, reset_store

        monkeypatch.delenv("REPRO_STORE", raising=False)
        reset_store()
        try:
            assert active_store() is None
        finally:
            reset_store()
