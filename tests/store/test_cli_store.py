"""``python -m repro store ...`` and ``--store`` on artifact runs."""

import json

import pytest

from repro.__main__ import main
from repro.api import BUILD_COUNTS, clear_caches
from repro.store import set_store

SCALE = ["--days", "4", "--sites", "110", "--probe-targets", "50"]


@pytest.fixture(autouse=True)
def _deactivate_store_after():
    yield
    set_store(None)
    clear_caches()


class TestStoreWarm:
    def test_warm_ls_verify_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "wh")
        code = main([
            "store", "warm", "--store", root, *SCALE,
            "--artifacts", "contrast,obs_availability",
        ])
        assert code == 0
        capsys.readouterr()

        assert main(["store", "ls", "--store", root, "--format", "json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        kinds = {(e["kind"], e["name"]) for e in listing["entries"]}
        assert ("layer", "traffic") in kinds
        assert ("layer", "observatory") in kinds
        assert ("artifact", "contrast") in kinds
        assert ("artifact", "obs_availability") in kinds

        assert main(["store", "verify", "--store", root]) == 0

    def test_warmed_store_serves_artifact_runs_without_rebuilds(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "wh")
        assert main([
            "store", "warm", "--store", root, *SCALE, "--artifacts", "none",
        ]) == 0
        clear_caches()
        before = BUILD_COUNTS.copy()
        assert main(["contrast", "--store", root, *SCALE]) == 0
        assert BUILD_COUNTS == before  # every layer came off disk
        assert "Three-way contrast" in capsys.readouterr().out

    def test_unknown_artifacts_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "store", "warm", "--store", str(tmp_path), *SCALE,
                "--artifacts", "contrst",
            ])
        assert excinfo.value.code == 2


class TestStoreMaintenance:
    def test_gc_removes_corruption_and_verify_flags_it(self, tmp_path, capsys):
        root = tmp_path / "wh"
        assert main([
            "store", "warm", "--store", str(root), *SCALE,
            "--layers", "census", "--artifacts", "none",
        ]) == 0
        capsys.readouterr()
        # Corrupt the one layer payload.
        [payload] = list(root.glob("objects/*/payload.pkl"))
        payload.write_bytes(b"garbage")
        assert main(["store", "verify", "--store", str(root)]) == 1
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(root)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "verify", "--store", str(root)]) == 0

    def test_read_only_commands_refuse_a_nonexistent_store(
        self, tmp_path, capsys
    ):
        """verify/ls/gc on a mistyped path must fail, not create a store."""
        missing = tmp_path / "no-such-store"
        for command in ("verify", "ls", "gc"):
            with pytest.raises(SystemExit) as excinfo:
                main(["store", command, "--store", str(missing)])
            assert excinfo.value.code == 2
        assert not missing.exists()  # no empty store left behind

    def test_missing_store_dir_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        from repro.store import reset_store

        reset_store()
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "ls"])
        assert excinfo.value.code == 2

    def test_unknown_store_subcommand_exits_2_with_suggestion(
        self, tmp_path, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "sl", "--store", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "did you mean 'ls'" in capsys.readouterr().err


class TestTopLevelCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_misspelled_subcommand_exits_2_and_suggests_store(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stroe", "ls"])
        assert excinfo.value.code == 2
        assert "did you mean 'store'" in capsys.readouterr().err

    def test_misspelled_serve_suggested(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sevre"])
        assert excinfo.value.code == 2
        assert "serve" in capsys.readouterr().err
