"""The warehouse itself: addressing, codec, integrity, maintenance."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    StoreIntegrityError,
    digest_key,
    dump_value,
    load_value,
)
from repro.store.serialize import ARRAYS_FILE, PAYLOAD_FILE
from repro.store.warehouse import STORE_SCHEMA


@dataclass
class Carrier:
    """A layer-shaped object: arrays, a shared array, plain fields."""

    data: np.ndarray
    lookup: np.ndarray
    alias: np.ndarray  # same object as ``lookup``
    label: str
    numbers: tuple


def make_carrier() -> Carrier:
    structured = np.zeros(
        5, dtype=np.dtype([("day", np.int32), ("bytes", np.int64)])
    )
    structured["day"] = np.arange(5)
    structured["bytes"] = np.arange(5) * 1000
    lookup = np.array([1.5, -2.5, 3.25])
    return Carrier(
        data=structured,
        lookup=lookup,
        alias=lookup,
        label="residence-A",
        numbers=(1, 2, 3),
    )


class TestCodec:
    def test_round_trip_preserves_values_and_sharing(self):
        files = dump_value(make_carrier())
        assert set(files) == {PAYLOAD_FILE, ARRAYS_FILE}
        loaded = load_value(files)
        assert loaded.label == "residence-A"
        assert loaded.numbers == (1, 2, 3)
        np.testing.assert_array_equal(loaded.data["bytes"], np.arange(5) * 1000)
        np.testing.assert_array_equal(loaded.lookup, [1.5, -2.5, 3.25])
        # the shared array stays one object after the round trip
        assert loaded.alias is loaded.lookup

    def test_shared_arrays_stored_once(self):
        files = dump_value(make_carrier())
        import io

        with np.load(io.BytesIO(files[ARRAYS_FILE]), allow_pickle=False) as npz:
            names = list(npz.files)
        assert len(names) == 2  # data + lookup; the alias is a reference

    def test_arrayless_values_skip_the_npz(self):
        files = dump_value({"plain": [1, 2, 3]})
        assert set(files) == {PAYLOAD_FILE}
        assert load_value(files) == {"plain": [1, 2, 3]}

    def test_npz_loads_without_pickle(self):
        """The array file must stay ``allow_pickle=False``-clean."""
        import io

        files = dump_value(make_carrier())
        with np.load(io.BytesIO(files[ARRAYS_FILE]), allow_pickle=False) as npz:
            for name in npz.files:
                npz[name]  # would raise if any member needed pickle


class TestAddressing:
    def test_digest_is_stable_and_distinct(self):
        key = ("traffic", 14, 42, None)
        assert digest_key("layer", "traffic", key) == digest_key(
            "layer", "traffic", ("traffic", 14, 42, None)
        )
        assert digest_key("layer", "traffic", key) != digest_key(
            "layer", "traffic", ("traffic", 15, 42, None)
        )
        assert digest_key("layer", "traffic", key) != digest_key(
            "artifact", "traffic", key
        )
        assert len(digest_key("layer", "traffic", key)) == 32


class TestStoreRoundTrip:
    def test_layer_save_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = ("traffic", 3, 42, None)
        assert store.load_layer("traffic", key) is None
        assert not store.has_layer("traffic", key)
        entry = store.save_layer("traffic", key, make_carrier())
        assert store.has_layer("traffic", key)
        assert entry.kind == "layer" and entry.name == "traffic"
        loaded = store.load_layer("traffic", key)
        np.testing.assert_array_equal(loaded.data["day"], np.arange(5))

    def test_artifact_save_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = ("table1", (), ("config", 3))
        document = {"name": "table1", "rows": [{"a": 1}], "metadata": {}}
        store.save_artifact("table1", key, document)
        assert store.load_artifact("table1", key) == document
        assert store.load_artifact("table1", ("other", (), ())) is None

    def test_save_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = ("census", 100, 42, 5)
        first = store.save_layer("census", key, make_carrier())
        second = store.save_layer("census", key, make_carrier())
        assert first.digest == second.digest
        assert len(store.entries()) == 1

    def test_manifest_indexes_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        entry = store.save_layer("census", ("census", 1), make_carrier())
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == STORE_SCHEMA
        assert entry.digest in manifest["entries"]
        assert manifest["entries"][entry.digest]["name"] == "census"


class TestIntegrity:
    def _corrupt(self, store: ArtifactStore, digest: str, filename: str) -> None:
        path = store.objects_dir / digest / filename
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_corrupted_payload_refused_on_load(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = ("traffic", 3)
        entry = store.save_layer("traffic", key, make_carrier())
        self._corrupt(store, entry.digest, PAYLOAD_FILE)
        with pytest.raises(StoreIntegrityError, match="sha256"):
            store.load_layer("traffic", key)

    def test_verify_reports_and_gc_removes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = store.save_layer("census", ("census", 1), make_carrier())
        bad = store.save_layer("traffic", ("traffic", 1), make_carrier())
        self._corrupt(store, bad.digest, ARRAYS_FILE)
        (store.objects_dir / ".tmp-leftover-123").mkdir()
        problems = store.verify()
        assert any("sha256 mismatch" in p for p in problems)
        assert any("staging" in p for p in problems)
        removed = store.gc()
        assert any(bad.digest in item for item in removed)
        assert [entry.digest for entry in store.entries()] == [good.digest]
        assert store.verify() == []

    def test_schema_mismatch_is_invisible_and_collected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        entry = store.save_layer("cloud", ("census", 1), make_carrier())
        meta_path = store.objects_dir / entry.digest / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = STORE_SCHEMA + 1
        meta_path.write_text(json.dumps(meta))
        assert store.load_layer("cloud", ("census", 1)) is None
        removed = store.gc()
        assert any(entry.digest in item for item in removed)

    def test_missing_entry_detected_against_manifest(self, tmp_path):
        import shutil

        store = ArtifactStore(tmp_path)
        entry = store.save_layer("census", ("census", 2), make_carrier())
        shutil.rmtree(store.objects_dir / entry.digest)
        assert any("manifest indexes missing" in p for p in store.verify())
        store.gc()
        assert store.verify() == []
