"""The chaos drill as a library call: the CI acceptance gate, in-process.

One full run at the CLI's default scale (it is CI-smoke sized) pins the
three headline properties -- bit-identical recovery from worker
crashes, zero 5xx under store faults, zero on-disk corruption -- plus
the replayability of the report itself.
"""

import json

from repro.resilience import run_drill
from repro.resilience.drill import DEFAULT_FAULTS
from repro.resilience.faults import FaultPlan


class TestRunDrill:
    def test_seed_7_drill_passes_clean(self, tmp_path):
        report = run_drill(seed=7, store_root=str(tmp_path / "warehouse"))
        assert report["problems"] == []
        assert report["ok"] is True

        pool = report["pool_crash"]
        assert pool["faults_fired"] >= 1  # at least one crash actually fired
        assert pool["bit_identical"] is True
        assert pool["resubmitted_shards"]  # ... and shards were re-run

        serve = report["serve_chaos"]
        assert serve["requests"] == 10
        assert all(status < 500 for _target, status in serve["statuses"])
        assert serve["faults_fired"]  # the chaos was not a no-op
        assert serve["store_verify_problems"] == 0

        # The report is the CLI's --format json payload: keep it JSON-safe.
        json.dumps(report)

    def test_report_schedule_matches_a_rebuilt_plan(self, tmp_path):
        report = run_drill(seed=11, store_root=str(tmp_path / "warehouse"))
        rebuilt = FaultPlan(DEFAULT_FAULTS, seed=11).schedule()
        assert report["schedule"] == {
            kind: list(indices) for kind, indices in rebuilt.items()
        }
