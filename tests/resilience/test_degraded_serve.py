"""Graceful degradation in the serving tier, driven by injected faults.

Serve-stale semantics (last-known-good + ``Warning`` header + payload
marker), circuit-breaker shedding (503 + ``Retry-After``), build-queue
saturation, the slow-build deadline, and the ``/healthz`` degraded
report -- each forced deterministically with ``build-error`` fault
plans instead of timing games.
"""

import pytest

from repro.api import StudyConfig
from repro.resilience import FaultPlan, FaultSpec, inject_faults
from repro.resilience.retry import reset_retry_counts
from repro.serve import ArtifactService
from repro.store import set_store

CONFIG = StudyConfig(days=4, sites=110, probe_targets=50, parallel=False)
ART = "obs_availability"
PATH = f"/v1/artifact/{ART}"

#: count == horizon: every build inside the plan fails, deterministically.
ALWAYS_FAIL = (FaultSpec("build-error", count=64, horizon=64),)


@pytest.fixture(autouse=True)
def _isolated():
    set_store(None)
    reset_retry_counts()
    yield
    set_store(None)
    reset_retry_counts()


def warmed_service(**kwargs) -> ArtifactService:
    """A service that has served ``ART`` once (so last-known-good exists)."""
    service = ArtifactService(CONFIG, store=None, **kwargs)
    assert service.handle("GET", PATH).status == 200
    service.drop_hot()
    return service


class TestServeStale:
    def test_stale_carries_warning_header_and_payload_marker(self):
        service = warmed_service()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            response = service.handle("GET", PATH)
        assert response.status == 200
        assert response.header("Warning") == '110 repro-serve "response is stale"'
        document = response.json()
        assert document["degraded"]["stale"] is True
        assert "build failed" in document["degraded"]["reason"]
        assert document["rows"]  # the body is the real last-known-good table
        assert service.resilience_counts["stale"] == 1

    def test_stale_responses_are_not_cacheable(self):
        service = warmed_service()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            response = service.handle("GET", PATH)
            assert response.header("ETag") is None
            assert response.header("Cache-Control") is None
            # ... and never enter the hot tier: the next request degrades
            # again instead of replaying a cached degraded body.
            assert service.handle("GET", PATH, hot_only=True) is None
            assert service.handle("GET", PATH).status == 200
        assert service.resilience_counts["stale"] == 2

    def test_recovery_serves_fresh_once_the_faults_clear(self):
        service = warmed_service()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            assert service.handle("GET", PATH).json()["degraded"]["stale"]
        # One failure: below the breaker threshold, so the next build runs.
        response = service.handle("GET", PATH)
        assert response.status == 200
        assert "degraded" not in response.json()
        assert response.header("ETag") is not None  # cacheable again

    def test_contrast_derived_from_a_stale_table_stays_marked(self):
        service = ArtifactService(CONFIG, store=None)
        assert service.handle("GET", "/v1/contrast/DE").status == 200
        service.drop_hot()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            response = service.handle("GET", "/v1/contrast/DE")
        assert response.status == 200
        assert response.header("Warning") is not None
        document = response.json()
        assert document["country"] == "DE"
        assert document["degraded"]["stale"] is True
        assert service.handle("GET", "/v1/contrast/DE", hot_only=True) is None


class TestBreakerAndShedding:
    def test_breaker_trips_then_sheds_503_when_no_stale_exists(self):
        service = ArtifactService(CONFIG, store=None)  # cold: nothing good yet
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            for _ in range(3):  # three consecutive build failures trip it
                assert service.handle("GET", PATH).status == 500
        response = service.handle("GET", PATH)  # no plan needed: breaker open
        assert response.status == 503
        assert response.header("Retry-After") == "5"
        document = response.json()
        assert "temporarily unavailable" in document["error"]
        assert document["retry_after_s"] == 5.0
        assert service.resilience_counts["breaker_open"] == 1
        assert service.resilience_counts["shed"] == 1

    def test_open_breaker_serves_stale_when_it_can(self):
        service = warmed_service()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            for _ in range(3):
                assert service.handle("GET", PATH).status == 200  # stale
        response = service.handle("GET", PATH)
        assert response.status == 200
        assert response.json()["degraded"]["reason"] == "circuit breaker open"
        assert service.resilience_counts["breaker_open"] == 1
        assert service.resilience_counts["shed"] == 0  # never had to shed

    def test_saturated_build_queue_sheds_immediately(self):
        service = ArtifactService(CONFIG, store=None, max_build_queue=0)
        response = service.handle("GET", PATH)
        assert response.status == 503
        assert response.header("Retry-After") == "1"
        assert "build queue saturated" in response.json()["error"]
        assert service.resilience_counts["shed"] == 1

    def test_slow_build_serves_fresh_but_counts_against_the_breaker(self):
        # A nanosecond deadline: every finished build is "slow".  The
        # work is done, so it serves fresh -- degradation only shows in
        # the telemetry and the breaker's failure count.
        service = ArtifactService(CONFIG, store=None, build_deadline_s=1e-9)
        response = service.handle("GET", PATH)
        assert response.status == 200
        assert "degraded" not in response.json()
        assert service.resilience_counts["slow_build"] == 1
        snapshot = service.health()["resilience"]["breakers"][ART]
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["state"] == "closed"


class TestHealthz:
    def test_ok_with_all_breakers_closed(self):
        service = ArtifactService(CONFIG, store=None)
        document = service.health()
        assert document["status"] == "ok"
        resilience = document["resilience"]
        assert resilience["breakers"] == {}
        assert resilience["pool"].keys() == {
            "fallback_contexts", "resubmitted_shards"
        }

    def test_degraded_while_a_breaker_is_open_with_detail(self):
        service = warmed_service()
        with inject_faults(FaultPlan(ALWAYS_FAIL, seed=7)):
            for _ in range(3):
                service.handle("GET", PATH)
        document = service.health()
        assert document["status"] == "degraded"
        resilience = document["resilience"]
        assert resilience["breakers"][ART]["state"] == "open"
        assert resilience["counts"]["stale"] == 3
        assert resilience["build_deadline_s"] is None
        assert resilience["max_build_queue"] == 8

    def test_healthz_mirrors_the_retry_counters(self):
        from repro.resilience.retry import RETRY_COUNTS

        RETRY_COUNTS["recovered:store:traffic"] += 1
        service = ArtifactService(CONFIG, store=None)
        counts = service.health()["resilience"]["retry_counts"]
        assert counts["recovered:store:traffic"] == 1
