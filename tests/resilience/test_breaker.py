"""Circuit breaker transitions, driven by an injected clock (no sleeping)."""

import threading

import pytest

from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_after_s=5.0, clock=clock)


class TestTrip:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_consecutive_failures_trip_at_the_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # two of three: still serving
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_a_success_resets_the_consecutive_count(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # never three in a row

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=-1.0, clock=clock)


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.state == "open"

    def test_half_open_after_the_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(4.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half-open"

    def test_exactly_one_probe_in_half_open(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps degrading
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # fully re-admitted

    def test_probe_failure_reopens_for_a_full_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # a fresh probe after the new cooldown

    def test_snapshot_reports_the_health_fields(self, breaker, clock):
        self._trip(breaker)
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": "open",
            "consecutive_failures": 3,
            "failure_threshold": 3,
            "reset_after_s": 5.0,
        }


class TestThreadSafety:
    def test_concurrent_recording_never_corrupts_state(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=0.0, clock=clock)

        def hammer():
            for _ in range(200):
                breaker.allow()
                breaker.record_failure()
                breaker.record_success()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
