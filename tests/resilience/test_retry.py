"""The shared retry policy: bounded, budgeted, and fully deterministic.

Everything here runs without real sleeping -- ``call_with_retry`` takes
injectable ``sleep``/``clock`` callables precisely so the backoff
schedule can be asserted byte-for-byte instead of timed.
"""

import pytest

from repro.resilience.retry import (
    DEFAULT_POLICY,
    RETRY_COUNTS,
    STORE_POLICY,
    RetryPolicy,
    call_with_retry,
    reset_retry_counts,
)


@pytest.fixture(autouse=True)
def _fresh_counts():
    reset_retry_counts()
    yield
    reset_retry_counts()


class FlakyOnce:
    """Fails ``failures`` times, then returns ``value`` forever."""

    def __init__(self, failures, value="ok", error=OSError("disk hiccup")):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay_s": -0.1},
            {"max_delay_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"timeout_s": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            DEFAULT_POLICY.delay(0)


class TestDeterministicBackoff:
    def test_delays_replay_exactly(self):
        assert DEFAULT_POLICY.delays("store:traffic") == DEFAULT_POLICY.delays(
            "store:traffic"
        )

    def test_labels_decorrelate_the_jitter(self):
        assert DEFAULT_POLICY.delays("store:traffic") != DEFAULT_POLICY.delays(
            "serve:table1"
        )

    def test_jitter_only_shrinks_below_the_raw_curve(self):
        policy = RetryPolicy(attempts=6, jitter=0.5, timeout_s=None)
        no_jitter = RetryPolicy(attempts=6, jitter=0.0, timeout_s=None)
        for jittered, raw in zip(policy.delays("x"), no_jitter.delays("x")):
            assert 0.0 < jittered <= raw
            assert jittered >= raw * (1.0 - policy.jitter)

    def test_max_delay_is_a_hard_ceiling(self):
        policy = RetryPolicy(
            attempts=10, base_delay_s=0.1, max_delay_s=0.25, jitter=0.0,
            timeout_s=None,
        )
        assert max(policy.delays("x")) == 0.25

    def test_store_policy_worst_case_is_sub_second(self):
        # The session tier falls back to a rebuild; a dead disk must not
        # stall a build for longer than its own tight budget.
        assert sum(STORE_POLICY.delays("any")) < STORE_POLICY.timeout_s


class TestCallWithRetry:
    def test_recovers_and_sleeps_the_policy_schedule(self):
        fn = FlakyOnce(failures=2)
        slept = []
        value = call_with_retry(
            fn, label="t", policy=DEFAULT_POLICY, sleep=slept.append
        )
        assert value == "ok"
        assert fn.calls == 3
        assert tuple(slept) == DEFAULT_POLICY.delays("t")[:2]
        assert RETRY_COUNTS["error:t"] == 2
        assert RETRY_COUNTS["retry:t"] == 2
        assert RETRY_COUNTS["recovered:t"] == 1
        assert RETRY_COUNTS["gaveup:t"] == 0

    def test_first_try_success_counts_nothing(self):
        assert call_with_retry(lambda: 42, label="t") == 42
        assert sum(RETRY_COUNTS.values()) == 0

    def test_exhaustion_reraises_the_last_error(self):
        error = OSError("still broken")
        fn = FlakyOnce(failures=99, error=error)
        with pytest.raises(OSError) as excinfo:
            call_with_retry(fn, label="t", sleep=lambda _s: None)
        assert excinfo.value is error
        assert fn.calls == DEFAULT_POLICY.attempts
        assert RETRY_COUNTS["gaveup:t"] == 1
        assert RETRY_COUNTS["recovered:t"] == 0

    def test_non_retryable_errors_propagate_immediately(self):
        fn = FlakyOnce(failures=1, error=ValueError("a bug, not IO"))
        with pytest.raises(ValueError):
            call_with_retry(fn, label="t", sleep=lambda _s: None)
        assert fn.calls == 1
        assert sum(RETRY_COUNTS.values()) == 0

    def test_deadline_budget_stops_before_the_attempt_count(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=10.0, max_delay_s=10.0, jitter=0.0,
            timeout_s=1.0,
        )
        fn = FlakyOnce(failures=99)
        with pytest.raises(OSError):
            call_with_retry(
                fn, label="t", policy=policy,
                sleep=lambda _s: None, clock=lambda: 0.0,
            )
        assert fn.calls == 1  # the first 10s backoff already blows the budget
        assert RETRY_COUNTS["deadline:t"] == 1
        assert RETRY_COUNTS["gaveup:t"] == 1

    def test_on_retry_sees_each_attempt_and_error(self):
        seen = []
        fn = FlakyOnce(failures=2)
        call_with_retry(
            fn, label="t",
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
            sleep=lambda _s: None,
        )
        assert seen == [(1, OSError), (2, OSError)]
