"""Fault plans: seeded schedules, spec parsing, and hook semantics.

The determinism contract under test is the one the drill relies on:
same specs + same seed => the same operations fail, replayably, with
zero cost (one global ``None``-check) while no plan is installed.
"""

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    InjectedWorkerCrash,
    active_plan,
    corrupt_hook,
    fault_hook,
    inject_faults,
    parse_fault,
)


class TestSpecParsing:
    def test_round_trip_through_the_text_form(self):
        for spec in (
            FaultSpec("store-read", count=2, horizon=10),
            FaultSpec("worker-crash"),
            FaultSpec("slow-build", count=1, horizon=4, delay_s=0.2),
        ):
            assert parse_fault(spec.spec()) == spec

    def test_kind_alone_uses_the_defaults(self):
        assert parse_fault("store-write") == FaultSpec("store-write")

    @pytest.mark.parametrize(
        "text",
        [
            "meteor-strike",  # unknown kind
            "store-read:two",  # non-numeric count
            "store-read:1@x",  # non-numeric horizon
            "store-read:1@4,jitter=1",  # unknown option
            "slow-build:1@2,delay=soon",  # non-numeric delay
        ],
    )
    def test_bad_specs_are_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultSpec("store-read", count=5, horizon=3)
        with pytest.raises(ValueError, match="count"):
            FaultSpec("store-read", count=-1)


class TestSchedules:
    def test_same_seed_same_schedule(self):
        specs = [FaultSpec(kind, count=3, horizon=64) for kind in FAULT_KINDS]
        assert (
            FaultPlan(specs, seed=7).schedule()
            == FaultPlan(specs, seed=7).schedule()
        )

    def test_different_seeds_differ(self):
        specs = [FaultSpec("store-read", count=4, horizon=256)]
        assert (
            FaultPlan(specs, seed=1).schedule()
            != FaultPlan(specs, seed=2).schedule()
        )

    def test_indices_stay_inside_the_horizon(self):
        plan = FaultPlan([FaultSpec("store-read", count=5, horizon=12)], seed=3)
        (indices,) = plan.schedule().values()
        assert len(indices) == 5
        assert len(set(indices)) == 5  # sampled without replacement
        assert all(0 <= index < 12 for index in indices)

    def test_adding_a_spec_never_perturbs_the_others(self):
        base = [FaultSpec("store-read", count=3, horizon=32)]
        extended = base + [FaultSpec("worker-crash", count=3, horizon=32)]
        assert (
            FaultPlan(base, seed=7).schedule()["store-read"]
            == FaultPlan(extended, seed=7).schedule()["store-read"]
        )

    def test_count_equal_horizon_fires_every_operation(self):
        plan = FaultPlan([FaultSpec("store-read", count=4, horizon=4)], seed=1)
        assert plan.schedule()["store-read"] == (0, 1, 2, 3)


class TestHooks:
    def test_hooks_are_no_ops_without_a_plan(self):
        assert active_plan() is None
        fault_hook("store-read", "nothing installed")
        blob = b"payload bytes"
        assert corrupt_hook(blob) is blob

    def test_fault_hook_fires_at_exactly_the_scheduled_indices(self):
        plan = FaultPlan([FaultSpec("store-read", count=2, horizon=6)], seed=7)
        (scheduled,) = plan.schedule().values()
        fired = []
        with inject_faults(plan):
            for index in range(6):
                try:
                    fault_hook("store-read", f"op {index}")
                except InjectedFaultError:
                    fired.append(index)
        assert tuple(fired) == scheduled
        assert plan.fired() == {"store-read": 2}
        assert [event.index for event in plan.events] == fired

    def test_worker_crash_is_a_broken_process_pool(self):
        plan = FaultPlan([FaultSpec("worker-crash", count=1, horizon=1)], seed=1)
        with inject_faults(plan):
            with pytest.raises(BrokenProcessPool) as excinfo:
                fault_hook("worker-crash", "shard 0")
        assert isinstance(excinfo.value, InjectedWorkerCrash)
        assert "shard 0" in str(excinfo.value)

    def test_injected_io_fault_is_an_oserror(self):
        # The retry policy's default retryable tuple must catch it.
        assert issubclass(InjectedFaultError, OSError)

    def test_corrupt_hook_flips_a_copy_never_the_original(self):
        plan = FaultPlan([FaultSpec("corrupt-blob", count=1, horizon=1)], seed=1)
        original = b"\x00payload"
        with inject_faults(plan):
            mutated = corrupt_hook(original, "meta.json")
        assert mutated != original
        assert mutated[0] == 0xFF and mutated[1:] == original[1:]
        assert original == b"\x00payload"  # the stored bytes stay intact

    def test_unscheduled_operations_pass_bytes_through_untouched(self):
        plan = FaultPlan([FaultSpec("corrupt-blob", count=1, horizon=8)], seed=7)
        (scheduled,) = plan.schedule().values()
        with inject_faults(plan):
            outcomes = [corrupt_hook(b"abc") == b"abc" for _ in range(8)]
        assert [i for i, clean in enumerate(outcomes) if not clean] == list(
            scheduled
        )

    def test_plans_do_not_nest(self):
        plan = FaultPlan([], seed=1)
        with inject_faults(plan):
            with pytest.raises(RuntimeError, match="already active"):
                with inject_faults(FaultPlan([], seed=2)):
                    pass  # pragma: no cover - the enter must raise
        assert active_plan() is None

    def test_the_plan_uninstalls_even_on_error(self):
        with pytest.raises(KeyboardInterrupt):
            with inject_faults(FaultPlan([], seed=1)):
                raise KeyboardInterrupt
        assert active_plan() is None
