"""Tests for the third-party pool, site model, and top list."""

import collections

import pytest

from repro.util.rng import RngStream
from repro.web.resources import (
    CATEGORY_IPV6_RATE,
    CATEGORY_RESOURCE_TYPES,
    CATEGORY_WEIGHTS,
    ResourceCategory,
    ResourceType,
    ThirdPartyPool,
)
from repro.web.sites import EmbeddedResource, Page, Website
from repro.web.toplist import TopList, TopListEntry


class TestCategoryTables:
    def test_weights_sum_to_one(self):
        assert abs(sum(CATEGORY_WEIGHTS.values()) - 1.0) < 1e-9

    def test_ads_dominant_category(self):
        assert max(CATEGORY_WEIGHTS, key=CATEGORY_WEIGHTS.get) is ResourceCategory.ADS

    def test_all_categories_covered(self):
        assert set(CATEGORY_WEIGHTS) == set(ResourceCategory)
        assert set(CATEGORY_IPV6_RATE) == set(ResourceCategory)
        assert set(CATEGORY_RESOURCE_TYPES) == set(ResourceCategory)

    def test_cdn_leads_ads_lag(self):
        assert (
            CATEGORY_IPV6_RATE[ResourceCategory.CONTENT_DELIVERY]
            > CATEGORY_IPV6_RATE[ResourceCategory.ADS]
        )


class TestThirdPartyPool:
    def make_pool(self, num_head=30, num_tail=200, seed=1) -> ThirdPartyPool:
        return ThirdPartyPool(num_head, num_tail, RngStream(seed, "pool"))

    def test_sizes(self):
        pool = self.make_pool()
        assert len(pool) == 230

    def test_validation(self):
        with pytest.raises(ValueError):
            ThirdPartyPool(0, 10, RngStream(1))
        with pytest.raises(ValueError):
            ThirdPartyPool(5, 5, RngStream(1), tail_popularity=0)

    def test_domains_unique_and_own_etld1(self):
        from repro.net.psl import default_psl

        pool = self.make_pool()
        psl = default_psl()
        domains = [s.domain for s in pool.services]
        assert len(domains) == len(set(domains))
        for domain in domains[:50]:
            assert psl.etld_plus_one(domain) == domain

    def test_draw_skew(self):
        """Head services dominate draws (the span head of Figure 8)."""
        pool = self.make_pool()
        counts = collections.Counter(pool.draw().domain for _ in range(3000))
        head_draws = sum(
            counts[s.domain] for s in pool.services if s.popularity > 1e-3
        )
        assert head_draws > 2000

    def test_draw_category_filter(self):
        pool = self.make_pool()
        ads_only = frozenset({ResourceCategory.ADS})
        for _ in range(50):
            assert pool.draw(ads_only).category is ResourceCategory.ADS

    def test_draw_embeds_distinct(self):
        pool = self.make_pool()
        embeds = pool.draw_embeds(10.0)
        domains = [s.domain for s in embeds]
        assert len(domains) == len(set(domains))

    def test_nested_dependencies_reference_pool(self):
        pool = self.make_pool(num_head=40)
        for service in pool.services:
            for dep in service.nested_dependencies:
                assert dep in pool
                assert dep != service.domain

    def test_resource_type_draw_respects_category(self):
        pool = self.make_pool()
        rng = RngStream(9)
        trackers = [s for s in pool.services if s.category is ResourceCategory.TRACKERS]
        if trackers:
            types = {trackers[0].draw_resource_type(rng) for _ in range(100)}
            allowed = set(CATEGORY_RESOURCE_TYPES[ResourceCategory.TRACKERS])
            assert types <= allowed


class TestSiteModel:
    def test_embedded_resource_validation(self):
        with pytest.raises(ValueError):
            EmbeddedResource("no-dots", ResourceType.IMAGE)

    def test_page_path_validation(self):
        with pytest.raises(ValueError):
            Page(path="relative")

    def test_website_main_page(self):
        site = Website(etld1="x.com", rank=1, main_host="www.x.com")
        with pytest.raises(KeyError):
            _ = site.main_page
        site.pages["/"] = Page(path="/")
        assert site.main_page.path == "/"

    def test_website_rank_validation(self):
        with pytest.raises(ValueError):
            Website(etld1="x.com", rank=0, main_host="www.x.com")

    def test_all_resource_fqdns(self):
        site = Website(etld1="x.com", rank=1, main_host="www.x.com")
        page = Page(path="/")
        page.resources.append(EmbeddedResource("static.x.com", ResourceType.IMAGE))
        page.resources.append(EmbeddedResource("ads.example.com", ResourceType.SCRIPT))
        site.pages["/"] = page
        assert site.all_resource_fqdns() == {"static.x.com", "ads.example.com"}


class TestTopList:
    def test_generate(self):
        toplist = TopList.generate(50, RngStream(1, "toplist"))
        assert len(toplist) == 50
        assert toplist.entries[0].rank == 1
        domains = [e.etld1 for e in toplist]
        assert len(domains) == len(set(domains))

    def test_top_slice(self):
        toplist = TopList.generate(50, RngStream(1, "toplist"))
        assert len(toplist.top(10)) == 10
        assert len(toplist.top(500)) == 50
        with pytest.raises(ValueError):
            toplist.top(0)

    def test_rank_contiguity_enforced(self):
        with pytest.raises(ValueError):
            TopList(entries=[TopListEntry(2, "x.com")])

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            TopListEntry(0, "x.com")

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            TopList.generate(0, RngStream(1))
