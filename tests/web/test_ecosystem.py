"""Tests for the assembled web ecosystem."""

import pytest

from repro.net.addr import Family
from repro.net.dns import DnsRecordType, DnsStatus
from repro.web.ecosystem import SiteStatus, WebEcosystem, WebEcosystemConfig


@pytest.fixture(scope="module")
def eco() -> WebEcosystem:
    return WebEcosystem(WebEcosystemConfig(num_sites=400, seed=3))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WebEcosystemConfig(num_sites=0)
        with pytest.raises(ValueError):
            WebEcosystemConfig(nxdomain_rate=0.9, dns_failure_rate=0.2)
        with pytest.raises(ValueError):
            WebEcosystemConfig(pages_per_site=0)


class TestBuild:
    def test_deterministic(self):
        a = WebEcosystem(WebEcosystemConfig(num_sites=100, seed=9))
        b = WebEcosystem(WebEcosystemConfig(num_sites=100, seed=9))
        assert [p.status for p in a.plans.values()] == [
            p.status for p in b.plans.values()
        ]
        assert a.toplist.entries == b.toplist.entries

    def test_every_entry_planned(self, eco):
        assert len(eco.plans) == 400
        statuses = {plan.status for plan in eco.plans.values()}
        assert SiteStatus.OK in statuses
        assert SiteStatus.NXDOMAIN in statuses

    def test_nxdomain_sites_have_no_zone(self, eco):
        for plan in eco.plans.values():
            if plan.status is SiteStatus.NXDOMAIN:
                response = eco.resolver.resolve(plan.entry.etld1, DnsRecordType.A)
                assert response.status is DnsStatus.NXDOMAIN

    def test_ok_sites_resolve(self, eco):
        ok = [p for p in eco.plans.values() if p.status is SiteStatus.OK]
        assert ok
        for plan in ok[:40]:
            assert plan.website is not None
            a = eco.resolver.resolve(plan.website.main_host, DnsRecordType.A)
            assert a.status is DnsStatus.NOERROR
            assert a.addresses

    def test_subdomains_cname_to_service_suffix(self, eco):
        ok = next(p for p in eco.plans.values() if p.status is SiteStatus.OK)
        tenant = ok.tenant
        assert tenant is not None
        for placement in tenant.placements:
            response = eco.resolver.resolve(placement.fqdn, DnsRecordType.A)
            assert response.status is DnsStatus.NOERROR
            assert len(response.chain) == 2
            identified = eco.service_of_cname(response.canonical_name)
            assert identified is not None
            _, service = identified
            assert service.cname_suffix == placement.service.cname_suffix

    def test_aaaa_matches_placement_ground_truth(self, eco):
        checked = 0
        for plan in eco.plans.values():
            if plan.tenant is None or plan.status is not SiteStatus.OK:
                continue  # failure-injected sites answer with errors
            for placement in plan.tenant.placements:
                aaaa = eco.resolver.resolve(placement.fqdn, DnsRecordType.AAAA)
                if placement.has_aaaa:
                    assert aaaa.addresses, placement.fqdn
                else:
                    assert not aaaa.addresses, placement.fqdn
                checked += 1
        assert checked > 100

    def test_addresses_attributable_via_bgp(self, eco):
        ok = [p for p in eco.plans.values() if p.status is SiteStatus.OK]
        for plan in ok[:30]:
            a = eco.resolver.resolve(plan.website.main_host, DnsRecordType.A)
            org = eco.org_of_address(a.addresses[0])
            assert org is not None

    def test_split_brand_addresses_differ_by_org(self, eco):
        """A bunny.net-style tenant's A and AAAA map to different orgs."""
        found = False
        for plan in eco.plans.values():
            if plan.tenant is None:
                continue
            for placement in plan.tenant.placements:
                service = placement.service
                if service.v4_org_id == service.v6_org_id or not placement.has_aaaa:
                    continue
                a = eco.resolver.resolve(placement.fqdn, DnsRecordType.A)
                aaaa = eco.resolver.resolve(placement.fqdn, DnsRecordType.AAAA)
                if not a.addresses or not aaaa.addresses:
                    continue  # failure-injected site
                org_a = eco.org_of_address(a.addresses[0])
                org_aaaa = eco.org_of_address(aaaa.addresses[0])
                assert org_a != org_aaaa
                found = True
        if not found:
            pytest.skip("no split-brand dual-stack tenant in this universe")

    def test_rdns_canonical_names(self, eco):
        ok = next(p for p in eco.plans.values() if p.status is SiteStatus.OK)
        a = eco.resolver.resolve(ok.website.main_host, DnsRecordType.A)
        hostname = eco.rdns.lookup(a.addresses[0])
        assert hostname is not None
        assert hostname.startswith("edge-")

    def test_failure_injection_applied(self, eco):
        for plan in eco.plans.values():
            if plan.status is SiteStatus.DNS_FAILURE:
                response = eco.resolver.resolve(
                    plan.website.main_host, DnsRecordType.A
                )
                assert response.status is DnsStatus.SERVFAIL
            elif plan.status is SiteStatus.TLS_FAILURE:
                a = eco.resolver.resolve(plan.website.main_host, DnsRecordType.A)
                assert all(
                    eco.connectivity.connect_latency(addr) is None
                    for addr in a.addresses
                )

    def test_websites_have_pages_and_links(self, eco):
        for plan in list(eco.plans.values())[:50]:
            if plan.website is None:
                continue
            assert "/" in plan.website.pages
            assert len(plan.website.pages) >= 2
            assert plan.website.main_page.internal_links

    def test_third_parties_materialized(self, eco):
        assert eco.pool is not None
        for service in eco.pool.services[:20]:
            assert service.domain in eco.tenants

    def test_edge_addresses_shared(self, eco):
        """CDN edges are shared across tenants (bounded pool)."""
        seen: dict[Family, set] = {Family.V4: set(), Family.V6: set()}
        for plan in eco.plans.values():
            if plan.website is None:
                continue
            a = eco.resolver.resolve(plan.website.main_host, DnsRecordType.A)
            seen[Family.V4].update(a.addresses)
        # Far fewer distinct edge addresses than sites.
        assert len(seen[Family.V4]) < len(eco.plans)
